"""Tests for the live serving runtime (``repro.serve``).

Fast by construction: every scenario runs under a heavily compressed
clock (time_scale ≤ 0.01, i.e. one model second ≤ 10 wall ms), so the
whole file exercises real asyncio concurrency in well under a minute.
"""

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.coldstart import ColdStartModel
from repro.cluster.energy import EnergyMeter, NodePowerModel
from repro.core.scheduling import SchedulingPolicy
from repro.metrics.collector import MetricsCollector
from repro.prediction.windowed import WindowedMaxSampler
from repro.serve import (
    Gateway,
    ScaledClock,
    ServeOptions,
    ServingRuntime,
    TraceReplayer,
    WorkerPool,
    serve_trace,
)
from repro.traces import poisson_trace
from repro.traces.loader import load_arrivals_csv, load_trace, save_trace
from repro.workloads import get_microservice, get_mix

FAST = 0.002  # one model second in 2 wall ms


# ---------------------------------------------------------------------------
# helpers


def _worker_pool(clock, executor, batch_size=2, n_nodes=4, on_finished=None):
    return WorkerPool(
        clock=clock,
        executor=executor,
        service=get_microservice("ASR"),
        cluster=Cluster(n_nodes=n_nodes),
        batch_size=batch_size,
        stage_slack_ms=300.0,
        stage_response_ms=350.0,
        scheduling=SchedulingPolicy.LSF,
        cold_start=ColdStartModel(jitter_sigma=0.0),
        rng=np.random.default_rng(0),
        on_task_finished=on_finished or (lambda t: None),
    )


def _gateway(clock, pools, mix, max_pending=0):
    metrics = MetricsCollector(EnergyMeter(model=NodePowerModel()))
    return Gateway(
        clock=clock,
        pools=pools,
        mix=mix,
        metrics=metrics,
        sampler=WindowedMaxSampler(),
        rng=np.random.default_rng(0),
        max_pending=max_pending,
    )


# ---------------------------------------------------------------------------
# clock


class TestScaledClock:
    def test_not_started_reads_zero(self):
        clock = ScaledClock(1.0)
        assert clock.now == 0.0
        assert not clock.started

    def test_start_is_idempotent(self):
        async def scenario():
            clock = ScaledClock(0.001)
            clock.start()
            await asyncio.sleep(0.01)
            before = clock.now
            clock.start()  # must NOT re-anchor t=0
            assert clock.now >= before
        asyncio.run(scenario())

    def test_scaling_of_wall_time(self):
        async def scenario():
            # 10x compression: 100 model ms pass in ~10 wall ms.
            clock = ScaledClock(0.1)
            clock.start()
            await clock.sleep_ms(100.0)
            assert clock.now >= 100.0
            assert clock.now < 2_000.0  # ...but nowhere near real time
        asyncio.run(scenario())

    def test_to_wall_s(self):
        clock = ScaledClock(0.05)
        assert clock.to_wall_s(1000.0) == pytest.approx(0.05)

    def test_sleep_until_is_absolute(self):
        async def scenario():
            clock = ScaledClock(0.001)
            clock.start()
            await clock.sleep_until_ms(50.0)
            now = clock.now
            assert now >= 50.0
            # Sleeping until a past deadline returns immediately.
            await clock.sleep_until_ms(10.0)
            assert clock.now == pytest.approx(now, abs=50.0)
        asyncio.run(scenario())

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            ScaledClock(0.0)


# ---------------------------------------------------------------------------
# worker pool


class TestWorkerPool:
    def test_prewarm_is_immediately_ready(self):
        async def scenario():
            clock = ScaledClock(FAST)
            with ThreadPoolExecutor(max_workers=2) as executor:
                pool = _worker_pool(clock, executor)
                clock.start()
                assert pool.prewarm(2) == 2
                await asyncio.sleep(0.02)  # let runners pass cold start
                assert pool.n_containers == 2
                assert all(s.is_ready for s in pool.containers)
                assert pool.free_slots == 4  # 2 workers x batch 2
                await pool.shutdown()
        asyncio.run(scenario())

    def test_spawn_pays_cold_start(self):
        async def scenario():
            clock = ScaledClock(FAST)
            with ThreadPoolExecutor(max_workers=2) as executor:
                pool = _worker_pool(clock, executor)
                clock.start()
                assert pool.spawn(1) == 1
                (slot,) = pool.containers
                assert not slot.is_ready  # still SPAWNING
                assert slot.ready_at_ms > clock.now
                await clock.sleep_ms(slot.cold_start_ms + 50.0)
                assert slot.is_ready
                await pool.shutdown()
        asyncio.run(scenario())

    def test_executes_task_and_reports_completion(self):
        from repro.workflow.job import Job, Task
        from repro.workloads import get_application

        done = []

        async def scenario():
            clock = ScaledClock(FAST)
            with ThreadPoolExecutor(max_workers=2) as executor:
                pool = _worker_pool(clock, executor, on_finished=done.append)
                clock.start()
                pool.prewarm(1)
                await asyncio.sleep(0.02)
                job = Job(app=get_application("ipa"), arrival_ms=clock.now)
                task = Task(job=job, stage_index=0, enqueue_ms=clock.now)
                pool.enqueue(task)
                for _ in range(200):
                    if done:
                        break
                    await asyncio.sleep(0.01)
                assert done == [task]
                assert task.record.start_ms >= 0
                assert task.record.end_ms >= task.record.start_ms
                assert task.record.exec_ms > 0
                assert pool.tasks_completed == 1
                assert pool.containers[0].tasks_executed == 1
                await pool.shutdown()
        asyncio.run(scenario())

    def test_terminate_refuses_busy_worker(self):
        from repro.workflow.job import Job, Task
        from repro.workloads import get_application

        async def scenario():
            clock = ScaledClock(1.0)  # real time: task won't finish fast
            with ThreadPoolExecutor(max_workers=2) as executor:
                pool = _worker_pool(clock, executor)
                clock.start()
                pool.prewarm(1)
                await asyncio.sleep(0.02)
                job = Job(app=get_application("ipa"), arrival_ms=clock.now)
                pool.enqueue(Task(job=job, stage_index=0, enqueue_ms=clock.now))
                await asyncio.sleep(0.01)  # runner picks it up
                with pytest.raises(RuntimeError):
                    pool.containers[0].terminate()
                await pool.shutdown()  # force-stop mid-task is allowed
        asyncio.run(scenario())

    def test_shutdown_cancels_runners(self):
        async def scenario():
            clock = ScaledClock(FAST)
            with ThreadPoolExecutor(max_workers=2) as executor:
                pool = _worker_pool(clock, executor)
                clock.start()
                pool.prewarm(3)
                runners = [s.runner for s in pool.containers]
                await pool.shutdown()
                assert all(r.done() for r in runners)
        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# gateway


class TestGateway:
    def test_admits_and_completes_jobs(self):
        async def scenario():
            clock = ScaledClock(FAST)
            mix = get_mix("heavy")
            with ThreadPoolExecutor(max_workers=4) as executor:
                pools = {}
                gw_holder = {}

                def finished(task):
                    gw_holder["gw"].on_task_finished(task)

                for name in mix.function_names():
                    pools[name] = WorkerPool(
                        clock=clock,
                        executor=executor,
                        service=get_microservice(name),
                        cluster=Cluster(n_nodes=4),
                        batch_size=2,
                        stage_slack_ms=300.0,
                        stage_response_ms=350.0,
                        scheduling=SchedulingPolicy.LSF,
                        cold_start=ColdStartModel(jitter_sigma=0.0),
                        rng=np.random.default_rng(1),
                        on_task_finished=finished,
                    )
                gateway = _gateway(clock, pools, mix)
                gw_holder["gw"] = gateway
                clock.start()
                for pool in pools.values():
                    pool.prewarm(1)
                await asyncio.sleep(0.02)
                jobs = [gateway.admit() for _ in range(5)]
                assert all(j is not None for j in jobs)
                assert gateway.in_flight == 5
                drained = await gateway.drained(timeout_ms=60_000.0)
                assert drained
                assert gateway.in_flight == 0
                assert gateway.metrics.jobs_created == 5
                assert len(gateway.metrics.completed_jobs) == 5
                for job in jobs:
                    assert job.completion_ms > job.arrival_ms
                for pool in pools.values():
                    await pool.shutdown()
        asyncio.run(scenario())

    def test_backpressure_sheds_beyond_max_pending(self):
        async def scenario():
            clock = ScaledClock(FAST)
            mix = get_mix("light")
            with ThreadPoolExecutor(max_workers=2) as executor:
                # No workers ever: admitted jobs never complete, so
                # in_flight only grows and the bound must kick in.
                pools = {
                    name: WorkerPool(
                        clock=clock,
                        executor=executor,
                        service=get_microservice(name),
                        cluster=Cluster(n_nodes=2),
                        batch_size=1,
                        stage_slack_ms=300.0,
                        stage_response_ms=350.0,
                        scheduling=SchedulingPolicy.LSF,
                        cold_start=ColdStartModel(jitter_sigma=0.0),
                        rng=np.random.default_rng(2),
                        on_task_finished=lambda t: None,
                    )
                    for name in mix.function_names()
                }
                gateway = _gateway(clock, pools, mix, max_pending=2)
                clock.start()
                results = [gateway.admit() for _ in range(5)]
                admitted = [r for r in results if r is not None]
                assert len(admitted) == 2
                assert gateway.shed == 3
                # Shed arrivals still count as created jobs (they become
                # SLO violations) — load shedding must not launder metrics.
                assert gateway.metrics.jobs_created == 5
                drained = await gateway.drained(timeout_ms=10.0)
                assert not drained  # nothing processes: drain times out
                for pool in pools.values():
                    await pool.shutdown()
        asyncio.run(scenario())

    def test_zero_max_pending_disables_shedding(self):
        async def scenario():
            clock = ScaledClock(FAST)
            mix = get_mix("light")
            pools = {}
            gateway = _gateway(clock, pools, mix, max_pending=0)
            clock.start()
            # 50 admissions, no capacity at all — nothing is shed.
            # (No pools exist; stop before the ingress hop fires.)
            for _ in range(50):
                assert gateway.admit() is not None
            assert gateway.shed == 0
        asyncio.run(scenario())

    def test_negative_max_pending_rejected(self):
        async def scenario():
            clock = ScaledClock(FAST)
            with pytest.raises(ValueError):
                _gateway(clock, {}, get_mix("light"), max_pending=-1)
        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# replayer determinism (CSV / NPZ round-trip)


class TestReplayerDeterminism:
    def test_plan_is_deterministic(self):
        trace = poisson_trace(30.0, 20.0, seed=3)
        mix = get_mix("medium")
        a = TraceReplayer(trace, mix, seed=3)
        b = TraceReplayer(trace, mix, seed=3)
        assert len(a) == len(b) == trace.arrivals_ms.size
        assert [p.time_ms for p in a.plan()] == [p.time_ms for p in b.plan()]
        assert [p.app.name for p in a.plan()] == [p.app.name for p in b.plan()]

    def test_seed_changes_app_sequence(self):
        trace = poisson_trace(30.0, 20.0, seed=3)
        mix = get_mix("medium")
        a = TraceReplayer(trace, mix, seed=3)
        b = TraceReplayer(trace, mix, seed=4)
        assert [p.app.name for p in a.plan()] != [p.app.name for p in b.plan()]

    def test_matches_simulator_app_stream(self):
        # The replayer's eager plan draws from the same seeded stream the
        # simulator consumes in _on_arrival — sequences must be identical.
        trace = poisson_trace(25.0, 15.0, seed=9)
        mix = get_mix("heavy")
        planned = [p.app.name for p in TraceReplayer(trace, mix, seed=9).plan()]
        rng = np.random.default_rng(9)
        expected = [
            mix.sample_application(rng).name for _ in range(trace.arrivals_ms.size)
        ]
        assert planned == expected

    def test_csv_npz_round_trip_replays_identically(self, tmp_path):
        trace = poisson_trace(40.0, 10.0, seed=11)
        mix = get_mix("light")

        # NPZ round-trip via save_trace/load_trace.
        npz_path = tmp_path / "trace.npz"
        save_trace(trace, npz_path)
        npz_trace = load_trace(npz_path)

        # CSV round-trip: one timestamp per line.
        csv_path = tmp_path / "trace.csv"
        csv_path.write_text(
            "arrival_ms\n"
            + "\n".join(repr(float(t)) for t in trace.arrivals_ms)
            + "\n"
        )
        csv_trace = load_arrivals_csv(csv_path)

        class NullGateway:
            def admit(self, app=None, input_scale=None):
                return None

        async def replay_once(t):
            clock = ScaledClock(0.0005)
            replayer = TraceReplayer(t, mix, seed=11)
            await replayer.replay(NullGateway(), clock)
            return replayer.replayed_ms, [p.app.name for p in replayer.plan()]

        # Two runs of the same loaded trace: identical timestamps.
        first_ts, first_apps = asyncio.run(replay_once(npz_trace))
        second_ts, second_apps = asyncio.run(replay_once(npz_trace))
        assert first_ts == second_ts
        assert first_apps == second_apps
        # And both formats reproduce the original trace's schedule.
        csv_ts, csv_apps = asyncio.run(replay_once(csv_trace))
        assert csv_ts == pytest.approx(first_ts)
        assert csv_apps == first_apps
        assert first_ts == [float(t) for t in trace.arrivals_ms]


# ---------------------------------------------------------------------------
# end to end


class TestEndToEnd:
    def test_serve_trace_completes_and_drains(self):
        trace = poisson_trace(15.0, 10.0, seed=5)
        result = serve_trace(
            "rscale",
            get_mix("light"),
            trace,
            seed=5,
            options=ServeOptions(time_scale=0.005),
            idle_timeout_ms=60_000.0,
        )
        assert result.n_jobs == trace.arrivals_ms.size
        assert result.n_completed == result.n_jobs
        assert result.n_incomplete == 0
        assert result.latencies_ms.size == result.n_jobs
        assert (result.latencies_ms > 0).all()
        assert result.policy == "rscale"
        assert result.trace == trace.name

    def test_runtime_exposes_drain_and_shed(self):
        from repro.core.policies import make_policy_config

        runtime = ServingRuntime(
            config=make_policy_config("rscale", idle_timeout_ms=60_000.0),
            mix=get_mix("light"),
            seed=1,
            options=ServeOptions(time_scale=0.005),
        )
        result = runtime.run(poisson_trace(10.0, 8.0, seed=1))
        assert runtime.drain_completed
        assert runtime.shed_jobs == 0
        assert result.n_completed == result.n_jobs

    def test_no_leaked_threads_after_run(self):
        before = threading.active_count()
        serve_trace(
            "bline",
            get_mix("light"),
            poisson_trace(10.0, 5.0, seed=2),
            seed=2,
            options=ServeOptions(time_scale=0.005),
        )
        # The executor and the event loop are torn down with the run.
        assert threading.active_count() <= before

    def test_shedding_surfaces_as_incomplete_jobs(self):
        trace = poisson_trace(50.0, 10.0, seed=6)
        runtime = ServingRuntime(
            config=__import__("repro.core.policies", fromlist=["x"])
            .make_policy_config("bline", idle_timeout_ms=60_000.0),
            mix=get_mix("heavy"),
            seed=6,
            options=ServeOptions(
                time_scale=0.005, max_pending=3, drain_timeout_ms=30_000.0
            ),
        )
        result = runtime.run(trace)
        assert runtime.shed_jobs > 0
        assert result.n_jobs == trace.arrivals_ms.size
        # Shed jobs never complete: they count against the SLO rate.
        assert result.n_incomplete >= runtime.shed_jobs
        assert result.slo_violation_rate > 0
