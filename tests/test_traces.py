"""Tests for the arrival-trace substrate."""

import numpy as np
import pytest

from repro.traces import (
    ArrivalTrace,
    RateProfile,
    poisson_trace,
    step_poisson_trace,
    wiki_rate_profile,
    wiki_trace,
    wits_rate_profile,
    wits_trace,
)


class TestRateProfile:
    def test_basic_lookup(self):
        p = RateProfile(np.array([0.0, 1000.0]), np.array([10.0, 20.0]))
        assert p.rate_at(0.0) == 10.0
        assert p.rate_at(999.0) == 10.0
        assert p.rate_at(1000.0) == 20.0
        assert p.rate_at(5000.0) == 20.0

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError):
            RateProfile(np.array([10.0]), np.array([5.0]))

    def test_times_strictly_increasing(self):
        with pytest.raises(ValueError):
            RateProfile(np.array([0.0, 0.0]), np.array([1.0, 2.0]))

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            RateProfile(np.array([0.0]), np.array([-1.0]))

    def test_scaled(self):
        p = RateProfile(np.array([0.0]), np.array([10.0]))
        assert p.scaled(2.0).rates_rps[0] == 20.0
        assert p.scaled(0.0).rates_rps[0] == 0.0

    def test_mean_and_max(self):
        p = RateProfile(np.array([0.0, 1000.0]), np.array([10.0, 30.0]))
        assert p.max_rate == 30.0
        assert p.mean_rate == 20.0

    def test_sample_arrivals_rate_accuracy(self):
        p = RateProfile(np.array([0.0]), np.array([100.0]))
        rng = np.random.default_rng(0)
        arrivals = p.sample_arrivals(60_000.0, rng)
        # 100 req/s for 60 s -> ~6000 arrivals (within 5%).
        assert 5700 <= arrivals.size <= 6300
        assert np.all(np.diff(arrivals) >= 0)
        assert arrivals[-1] < 60_000.0

    def test_sample_zero_rate(self):
        p = RateProfile(np.array([0.0]), np.array([0.0]))
        assert p.sample_arrivals(1000.0, np.random.default_rng(0)).size == 0

    def test_thinning_respects_profile_shape(self):
        # Second half has 4x the rate of the first half.
        p = RateProfile(np.array([0.0, 30_000.0]), np.array([20.0, 80.0]))
        arrivals = p.sample_arrivals(60_000.0, np.random.default_rng(1))
        first = np.sum(arrivals < 30_000.0)
        second = np.sum(arrivals >= 30_000.0)
        assert 2.5 < second / first < 6.0


class TestArrivalTrace:
    def test_length_and_duration(self):
        t = ArrivalTrace(np.array([0.0, 500.0, 1500.0]))
        assert len(t) == 3
        assert t.duration_ms == 1500.0

    def test_unsorted_input_gets_sorted(self):
        t = ArrivalTrace(np.array([5.0, 1.0, 3.0]))
        assert list(t.arrivals_ms) == [1.0, 3.0, 5.0]

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            ArrivalTrace(np.array([-1.0, 2.0]))

    def test_mean_rate(self):
        t = ArrivalTrace(np.linspace(0, 10_000, 101))  # 100 gaps over 10 s
        assert t.mean_rate_rps == pytest.approx(10.0)

    def test_rate_series_counts(self):
        t = ArrivalTrace(np.array([100.0, 200.0, 1100.0, 1200.0, 1300.0]))
        series = t.rate_series(1000.0, duration_ms=2000.0)
        assert series.shape == (2,)
        assert series[0] == pytest.approx(2.0)
        assert series[1] == pytest.approx(3.0)

    def test_clipped_rebases(self):
        t = ArrivalTrace(np.array([100.0, 600.0, 1100.0]))
        sub = t.clipped(500.0, 1200.0)
        assert list(sub.arrivals_ms) == [100.0, 600.0]

    def test_thinned_fraction(self):
        t = ArrivalTrace(np.arange(10_000, dtype=float))
        thin = t.thinned(0.5, np.random.default_rng(0))
        assert 4500 <= len(thin) <= 5500

    def test_thinned_invalid_fraction(self):
        t = ArrivalTrace(np.array([1.0]))
        with pytest.raises(ValueError):
            t.thinned(1.5, np.random.default_rng(0))

    def test_merge(self):
        a = ArrivalTrace(np.array([1.0, 3.0]))
        b = ArrivalTrace(np.array([2.0, 4.0]))
        merged = ArrivalTrace.merge([a, b])
        assert list(merged.arrivals_ms) == [1.0, 2.0, 3.0, 4.0]

    def test_merge_empty(self):
        assert len(ArrivalTrace.merge([])) == 0


class TestPoisson:
    def test_average_rate(self):
        t = poisson_trace(50.0, 120.0, seed=1)
        assert t.mean_rate_rps == pytest.approx(50.0, rel=0.1)

    def test_deterministic_for_seed(self):
        a = poisson_trace(20.0, 30.0, seed=7)
        b = poisson_trace(20.0, 30.0, seed=7)
        assert np.array_equal(a.arrivals_ms, b.arrivals_ms)

    def test_different_seeds_differ(self):
        a = poisson_trace(20.0, 30.0, seed=7)
        b = poisson_trace(20.0, 30.0, seed=8)
        assert not np.array_equal(a.arrivals_ms, b.arrivals_ms)

    def test_zero_rate_gives_empty(self):
        assert len(poisson_trace(0.0, 10.0, seed=0)) == 0

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            poisson_trace(10.0, 0.0)

    def test_exponential_gaps(self):
        t = poisson_trace(100.0, 300.0, seed=2)
        gaps = np.diff(t.arrivals_ms)
        # Exponential(10ms): mean ~ 10, CV ~ 1.
        assert gaps.mean() == pytest.approx(10.0, rel=0.1)
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, abs=0.15)


class TestStepPoisson:
    def test_mean_preserved(self):
        t = step_poisson_trace(50.0, 600.0, seed=3)
        assert t.mean_rate_rps == pytest.approx(50.0, rel=0.15)

    def test_variation_bounds(self):
        t = step_poisson_trace(50.0, 600.0, variation=0.4, seed=3)
        assert t.profile is not None
        # Renormalised rates stay in a sane band around the mean.
        assert t.profile.rates_rps.min() > 0
        assert t.profile.max_rate < 50.0 * 2.0

    def test_invalid_variation(self):
        with pytest.raises(ValueError):
            step_poisson_trace(50.0, 60.0, variation=1.0)

    def test_rates_actually_vary(self):
        t = step_poisson_trace(50.0, 600.0, variation=0.5, seed=3)
        assert t.profile.rates_rps.std() > 5.0


class TestWiki:
    def test_average_rate(self):
        t = wiki_trace(avg_rps=100.0, duration_s=600.0, seed=4)
        assert t.mean_rate_rps == pytest.approx(100.0, rel=0.15)

    def test_diurnal_periodicity(self):
        profile = wiki_rate_profile(
            avg_rps=100.0, duration_s=1200.0, period_s=300.0, noise=0.0, seed=0
        )
        rates = profile.rates_rps
        n_period = int(300.0 / 5.0)
        # Autocorrelation at one full period should be strongly positive.
        a = rates[: len(rates) - n_period]
        b = rates[n_period:]
        corr = np.corrcoef(a, b)[0, 1]
        assert corr > 0.8

    def test_moderate_peak_to_mean(self):
        profile = wiki_rate_profile(avg_rps=100.0, duration_s=1200.0, seed=0)
        ratio = profile.max_rate / profile.mean_rate
        assert 1.2 < ratio < 2.5

    def test_rates_never_collapse(self):
        profile = wiki_rate_profile(avg_rps=100.0, duration_s=2400.0, seed=1)
        assert profile.rates_rps.min() > 100.0 * 0.1


class TestWits:
    def test_average_rate(self):
        t = wits_trace(avg_rps=60.0, peak_rps=240.0, duration_s=600.0, seed=5)
        assert t.mean_rate_rps == pytest.approx(60.0, rel=0.2)

    def test_bursty_peak_to_median(self):
        profile = wits_rate_profile(
            avg_rps=100.0, peak_rps=500.0, duration_s=2400.0, seed=2
        )
        ratio = profile.max_rate / np.median(profile.rates_rps)
        # The paper reports a ~5x peak-to-median ratio for WITS.
        assert ratio > 2.5

    def test_wits_less_periodic_than_wiki(self):
        wiki = wiki_rate_profile(
            avg_rps=100.0, duration_s=1200.0, period_s=300.0, noise=0.0, seed=0
        )
        wits = wits_rate_profile(avg_rps=100.0, peak_rps=500.0, duration_s=1200.0, seed=0)
        n_period = int(300.0 / 5.0)

        def autocorr(rates):
            a = rates[: len(rates) - n_period]
            b = rates[n_period:]
            return np.corrcoef(a, b)[0, 1]

        assert autocorr(wiki.rates_rps) > autocorr(wits.rates_rps)

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            wits_rate_profile(avg_rps=100.0, peak_rps=50.0)
