"""Tests for the terminal plotting helpers."""

import numpy as np
import pytest

from repro.metrics.ascii_plot import bar_chart, cdf_plot, line_plot, sparkline


class TestBarChart:
    def test_rows_and_scaling(self):
        out = bar_chart({"fifer": 10.0, "bline": 40.0}, width=20)
        lines = out.splitlines()
        assert len(lines) == 2
        # bline's bar is the longest (scaled to full width).
        assert lines[1].count("█") == 20
        assert 0 < lines[0].count("█") <= 5

    def test_title(self):
        out = bar_chart({"a": 1.0}, title="T")
        assert out.startswith("T\n")

    def test_empty(self):
        assert bar_chart({}) == ""
        assert bar_chart({}, title="T") == "T"

    def test_zero_values_safe(self):
        out = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in out and "b" in out

    def test_unit_suffix(self):
        assert "kJ" in bar_chart({"a": 5.0}, unit="kJ")


class TestSparkline:
    def test_length_compression(self):
        out = sparkline(np.arange(1000.0), width=50)
        assert len(out) == 50

    def test_short_series_uncompressed(self):
        assert len(sparkline([1.0, 2.0, 3.0], width=50)) == 3

    def test_monotone_series_monotone_glyphs(self):
        out = sparkline([0.0, 1.0, 2.0, 3.0], width=10)
        assert out[0] <= out[-1]

    def test_empty_and_zero(self):
        assert sparkline([]) == ""
        assert set(sparkline([0.0, 0.0])) == {" "}


class TestLinePlot:
    def test_grid_dimensions(self):
        out = line_plot(
            {"s": ([0, 1, 2], [0, 1, 2])}, width=30, height=8,
        )
        grid_rows = [l for l in out.splitlines() if l.startswith("|")]
        assert len(grid_rows) == 8
        assert all(len(r) == 31 for r in grid_rows)

    def test_markers_distinct_per_series(self):
        out = line_plot({
            "a": ([0, 1], [0, 1]),
            "b": ([0, 1], [1, 0]),
        })
        assert "*=a" in out and "o=b" in out
        assert "*" in out and "o" in out

    def test_empty(self):
        assert line_plot({}, title="T") == "T"

    def test_constant_series_safe(self):
        out = line_plot({"flat": ([0, 1, 2], [5, 5, 5])})
        assert "*" in out


class TestCdfPlot:
    def test_contains_axis_labels(self):
        rng = np.random.default_rng(0)
        out = cdf_plot({"fifer": rng.uniform(0, 100, 200)})
        assert "CDF" in out
        assert "latency (ms)" in out

    def test_truncation_at_percentile(self):
        values = list(range(100))
        out = cdf_plot({"x": values}, up_to_percentile=50.0)
        # The x-axis maximum reflects the truncated tail.
        assert "49" in out or "50" in out

    def test_empty_samples(self):
        assert cdf_plot({"x": []}, title="T") == "T"
