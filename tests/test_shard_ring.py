"""Property tests for the consistent-hash ring (``repro.shard.ring``).

The three contracts the sharded plane leans on:

* **Balance** — at 64 vnodes every shard's keyspace share is within
  ±20% of fair, as a deterministic fact of the default salt (checked
  from exact arc lengths, not sampling).
* **Minimal movement** — adding or removing a shard only moves keys
  whose arcs changed hands; no key ever moves between two surviving
  shards.
* **Process stability** — shard ownership is a pure function of the
  key, independent of ``PYTHONHASHSEED``, so forked, spawned and
  restarted workers always agree.
"""

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.shard.ring import (
    ConsistentHashRing,
    hash_key,
    splitmix64,
    splitmix64_array,
)

REPO_SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")

keys_st = st.lists(
    st.integers(min_value=0, max_value=2**64 - 1),
    min_size=1, max_size=200,
)


# ---------------------------------------------------------------------------
# balance


@pytest.mark.parametrize("n_shards", range(2, 9))
def test_balance_within_20pct_at_default_vnodes(n_shards):
    report = ConsistentHashRing(n_shards).balance_report()
    assert report["max_over_fair"] <= 1.2, report
    assert report["min_over_fair"] >= 0.8, report


def test_arc_fractions_sum_to_one():
    for n_shards in (1, 3, 7):
        shares = ConsistentHashRing(n_shards).arc_fractions()
        assert sum(shares.values()) == pytest.approx(1.0, abs=1e-12)
        assert set(shares) == set(range(n_shards))


@given(keys=keys_st)
@settings(max_examples=25, deadline=None)
def test_empirical_ownership_matches_shard_ids(keys):
    ring = ConsistentHashRing(4)
    owners = {ring.shard_for(k) for k in keys}
    assert owners <= set(ring.shard_ids)


# ---------------------------------------------------------------------------
# scalar / vector agreement


@given(keys=keys_st)
@settings(max_examples=50, deadline=None)
def test_vectorized_lookup_matches_scalar(keys):
    ring = ConsistentHashRing(5)
    arr = np.asarray(keys, dtype=np.uint64)
    vec = ring.shard_for_array(arr)
    assert [int(v) for v in vec] == [ring.shard_for(k) for k in keys]


@given(keys=keys_st)
@settings(max_examples=50, deadline=None)
def test_splitmix64_array_matches_scalar(keys):
    arr = splitmix64_array(np.asarray(keys, dtype=np.uint64))
    assert [int(v) for v in arr] == [splitmix64(k) for k in keys]


# ---------------------------------------------------------------------------
# minimal movement


@given(keys=keys_st, n_shards=st.integers(min_value=2, max_value=6))
@settings(max_examples=25, deadline=None)
def test_adding_a_shard_only_moves_keys_to_it(keys, n_shards):
    ring = ConsistentHashRing(n_shards)
    grown = ring.with_shard_added(n_shards)
    for key in keys:
        before, after = ring.shard_for(key), grown.shard_for(key)
        # A key either stays put or moves to the new shard — never
        # between two surviving shards.
        assert after == before or after == n_shards


@given(keys=keys_st, n_shards=st.integers(min_value=3, max_value=6))
@settings(max_examples=25, deadline=None)
def test_removing_a_shard_only_moves_its_keys(keys, n_shards):
    ring = ConsistentHashRing(n_shards)
    removed = n_shards - 1
    shrunk = ring.with_shard_removed(removed)
    for key in keys:
        before, after = ring.shard_for(key), shrunk.shard_for(key)
        if before != removed:
            assert after == before
        else:
            assert after != removed


def test_movement_fraction_is_the_new_shards_share():
    # The exact keyspace fraction that moves when shard N joins is N's
    # arc share — and balance bounds that share near 1/(N+1).
    for n_shards in (2, 4, 7):
        grown = ConsistentHashRing(n_shards).with_shard_added(n_shards)
        share = grown.arc_fractions()[n_shards]
        fair = 1.0 / (n_shards + 1)
        assert share <= 1.2 * fair


# ---------------------------------------------------------------------------
# process stability (no PYTHONHASHSEED dependence)


def _ownership_fingerprint_script():
    return textwrap.dedent("""
        import numpy as np
        from repro.shard.ring import ConsistentHashRing
        ring = ConsistentHashRing(4)
        ids = np.arange(10_000, dtype=np.uint64)
        owners = ring.shard_for_array(ids)
        print(owners.tobytes().hex()[:64])
        print(int(owners.sum()), ring._positions.tobytes().hex()[:64])
    """)


@pytest.mark.parametrize("hash_seed", ["0", "12345"])
def test_ownership_stable_across_pythonhashseed(hash_seed):
    env = dict(os.environ, PYTHONHASHSEED=hash_seed,
               PYTHONPATH=REPO_SRC)
    out = subprocess.run(
        [sys.executable, "-c", _ownership_fingerprint_script()],
        capture_output=True, text=True, env=env, check=True,
    ).stdout
    reference = subprocess.run(
        [sys.executable, "-c", _ownership_fingerprint_script()],
        capture_output=True, text=True,
        env=dict(os.environ, PYTHONHASHSEED="999", PYTHONPATH=REPO_SRC),
        check=True,
    ).stdout
    assert out == reference


def test_string_and_int_keys_are_seed_free_in_process():
    assert hash_key(42) == splitmix64(42)
    assert hash_key("job-42") == hash_key("job-42")


# ---------------------------------------------------------------------------
# construction and validation


def test_ring_rejects_bad_arguments():
    with pytest.raises(ValueError):
        ConsistentHashRing(0)
    with pytest.raises(ValueError):
        ConsistentHashRing(2, vnodes=0)
    with pytest.raises(ValueError):
        ConsistentHashRing(0, shard_ids=[1, 1])
    with pytest.raises(TypeError):
        hash_key(True)
    with pytest.raises(TypeError):
        hash_key(3.5)


def test_membership_change_validation():
    ring = ConsistentHashRing(2)
    with pytest.raises(ValueError):
        ring.with_shard_added(1)
    with pytest.raises(ValueError):
        ring.with_shard_removed(7)
    solo = ConsistentHashRing(1)
    with pytest.raises(ValueError):
        solo.with_shard_removed(0)


def test_surviving_vnode_positions_never_move():
    ring = ConsistentHashRing(3)
    grown = ring.with_shard_added(3)
    before = {
        (int(p), int(o))
        for p, o in zip(ring._positions, ring._owners)
    }
    after = {
        (int(p), int(o))
        for p, o in zip(grown._positions, grown._owners)
    }
    assert before <= after
    assert len(after - before) == ring.vnodes
