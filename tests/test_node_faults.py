"""Cluster fault schedules: scripted node kills/recoveries in the sim."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.faults import (
    NodeFaultEvent,
    NodeFaultSchedule,
    RegistryDegradation,
)
from repro.obs.registry import MetricsRegistry
from repro.runtime.system import run_policy
from repro.traces import poisson_trace
from repro.workloads import get_mix


class TestNodeFaultEvent:
    def test_valid_event(self):
        ev = NodeFaultEvent(at_ms=30_000.0, action="kill", node_ids=(0, 1))
        assert ev.node_ids == (0, 1)

    @pytest.mark.parametrize("kwargs", [
        dict(at_ms=-1.0, action="kill", node_ids=(0,)),
        dict(at_ms=float("nan"), action="kill", node_ids=(0,)),
        dict(at_ms=float("inf"), action="kill", node_ids=(0,)),
        dict(at_ms=0.0, action="reboot", node_ids=(0,)),
        dict(at_ms=0.0, action="kill", node_ids=()),
        dict(at_ms=0.0, action="kill", node_ids=(-1,)),
        dict(at_ms=0.0, action="kill", node_ids=(0, 0)),
    ])
    def test_invalid_events_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NodeFaultEvent(**kwargs)


class TestScheduleParse:
    def test_parse_round_trip(self):
        sched = NodeFaultSchedule.parse("kill@30=0,1;recover@60=0,1")
        assert len(sched) == 2
        kill, recover = sched.events
        assert kill.action == "kill"
        assert kill.at_ms == 30_000.0
        assert kill.node_ids == (0, 1)
        assert recover.action == "recover"
        assert recover.at_ms == 60_000.0

    def test_events_sorted_by_time(self):
        sched = NodeFaultSchedule.parse("recover@60=0;kill@30=0")
        assert [e.at_ms for e in sched.events] == [30_000.0, 60_000.0]

    def test_correlated_zone_failure_spec(self):
        sched = NodeFaultSchedule.parse("kill@10=0,1,2")
        assert sched.events[0].node_ids == (0, 1, 2)

    @pytest.mark.parametrize("spec", [
        "", ";;", "kill@30", "kill=0", "melt@30=0", "kill@x=0", "kill@30=a",
        "kill@-5=0", "kill@30=",
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            NodeFaultSchedule.parse(spec)

    def test_trailing_separator_tolerated(self):
        assert len(NodeFaultSchedule.parse("kill@30=0;")) == 1


class TestApplyEvent:
    def _cluster(self, n=2):
        return Cluster(n_nodes=n, cores_per_node=4)

    def test_kill_marks_node_failed_and_counts(self):
        cluster = self._cluster()
        reg = MetricsRegistry()
        sched = NodeFaultSchedule.parse("kill@1=0")
        sched.apply_event(sched.events[0], cluster, [], 1_000.0, registry=reg)
        assert cluster.nodes[0].failed
        assert not cluster.nodes[0].fits(cpu=0.1, memory_mb=1.0)
        assert reg.value("cluster_node_kills_total") == 1

    def test_kill_is_idempotent(self):
        cluster = self._cluster()
        reg = MetricsRegistry()
        ev = NodeFaultEvent(at_ms=0.0, action="kill", node_ids=(0,))
        sched = NodeFaultSchedule(events=(ev,))
        sched.apply_event(ev, cluster, [], 0.0, registry=reg)
        sched.apply_event(ev, cluster, [], 0.0, registry=reg)
        assert reg.value("cluster_node_kills_total") == 1

    def test_recover_restores_placement(self):
        cluster = self._cluster()
        reg = MetricsRegistry()
        kill = NodeFaultEvent(at_ms=0.0, action="kill", node_ids=(0,))
        recover = NodeFaultEvent(at_ms=5.0, action="recover", node_ids=(0,))
        sched = NodeFaultSchedule(events=(kill, recover))
        sched.apply_event(kill, cluster, [], 0.0, registry=reg)
        sched.apply_event(recover, cluster, [], 5.0, registry=reg)
        assert not cluster.nodes[0].failed
        assert cluster.nodes[0].fits(cpu=0.1, memory_mb=1.0)
        assert reg.value("cluster_node_recoveries_total") == 1

    def test_recover_without_kill_is_a_noop(self):
        cluster = self._cluster()
        reg = MetricsRegistry()
        ev = NodeFaultEvent(at_ms=0.0, action="recover", node_ids=(1,))
        NodeFaultSchedule(events=(ev,)).apply_event(
            ev, cluster, [], 0.0, registry=reg)
        assert reg.value("cluster_node_recoveries_total") == 0

    def test_unknown_node_id_raises(self):
        cluster = self._cluster(n=2)
        ev = NodeFaultEvent(at_ms=0.0, action="kill", node_ids=(7,))
        with pytest.raises(ValueError):
            NodeFaultSchedule(events=(ev,)).apply_event(ev, cluster, [], 0.0)


class TestEndToEndSimulation:
    def test_node_kill_and_recovery_in_a_run(self):
        mix = get_mix("medium")
        trace = poisson_trace(20.0, 60.0, seed=3)
        sched = NodeFaultSchedule.parse("kill@20=0;recover@40=0")
        result = run_policy("rscale", mix, trace, seed=3,
                            node_fault_schedule=sched)
        assert result.nodes_killed == 1
        assert result.nodes_recovered == 1
        # The run completed despite losing a node mid-trace.
        assert result.n_jobs > 0

    def test_fault_schedule_changes_outcomes(self):
        from repro.runtime.system import ClusterSpec

        mix = get_mix("medium")
        trace = poisson_trace(30.0, 60.0, seed=3)
        spec = ClusterSpec(n_nodes=2)
        base = run_policy("rscale", mix, trace, seed=3, cluster_spec=spec)
        faulted = run_policy(
            "rscale", mix, trace, seed=3, cluster_spec=spec,
            node_fault_schedule=NodeFaultSchedule.parse("kill@15=0"))
        assert faulted.nodes_killed == 1
        assert faulted.summary() != base.summary()


class TestRegistryDegradationValidation:
    def test_valid_window(self):
        model = RegistryDegradation(start_ms=1_000.0, end_ms=2_000.0,
                                    factor=3.0)
        assert model is not None

    @pytest.mark.parametrize("kwargs", [
        dict(start_ms=-1.0, end_ms=10.0),
        dict(start_ms=10.0, end_ms=10.0),     # empty window
        dict(start_ms=20.0, end_ms=10.0),     # inverted window
        dict(start_ms=0.0, end_ms=10.0, factor=0.5),
        dict(start_ms=0.0, end_ms=10.0, factor=float("nan")),
        dict(start_ms=float("nan"), end_ms=10.0),
    ])
    def test_invalid_windows_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RegistryDegradation(**kwargs)
