"""Tests for the experiment harness (small-parameter runs)."""

import numpy as np
import pytest

from repro.experiments import (
    TABLE6_FEATURES,
    figure2_rows,
    figure3a_rows,
    figure3b_rows,
    format_table,
    make_scaled_trace,
    normalize,
    pretrained_predictor,
    run_prototype,
    run_trace_simulation,
    simulation_cluster,
    table4_rows,
    table6_rows,
    training_series_for,
)
from repro.experiments.features import FEATURES, fifer_features_from_code
from repro.experiments.prototype import prototype_cluster


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [(1, 2.5), ("x", 10_000.0)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "10,000" in out

    def test_format_table_with_title(self):
        out = format_table(["h"], [("v",)], title="T")
        assert out.startswith("T\n")

    def test_normalize(self):
        norm = normalize({"a": 10.0, "b": 5.0}, "a")
        assert norm == {"a": 1.0, "b": 0.5}

    def test_normalize_zero_base_returns_raw(self):
        values = {"a": 0.0, "b": 3.0}
        assert normalize(values, "a") == values

    def test_normalize_missing_base(self):
        with pytest.raises(KeyError):
            normalize({"a": 1.0}, "z")


class TestCharacterization:
    def test_figure2_seven_rows(self):
        rows = figure2_rows(warm_samples=10, seed=0)
        assert len(rows) == 7
        for row in rows:
            name, cold_exec, cold_rtt, warm_exec, warm_rtt, gap = row
            assert cold_rtt > warm_rtt
            assert gap == pytest.approx(cold_rtt - warm_rtt)

    def test_figure3a_shares_sum_to_one(self):
        rows = figure3a_rows()
        apps = {r[0] for r in rows}
        assert len(apps) == 4
        for app in apps:
            assert sum(r[3] for r in rows if r[0] == app) == pytest.approx(1.0)

    def test_figure3b_std_within_20ms(self):
        rows = figure3b_rows(runs=50, seed=0)
        assert len(rows) == 8
        assert all(r[2] < 20.0 for r in rows)

    def test_table4_matches_paper(self):
        rows = table4_rows()
        assert [r[0] for r in rows] == [
            "face-security", "img", "ipa", "detect-fatigue",
        ]
        assert [round(r[2]) for r in rows] == [788, 700, 697, 572]


class TestFeatures:
    def test_fifer_row_all_checked(self):
        assert all(TABLE6_FEATURES["Fifer"].values())

    def test_derived_row_matches_table(self):
        assert fifer_features_from_code() == TABLE6_FEATURES["Fifer"]

    def test_every_framework_covers_every_feature_key(self):
        for feats in TABLE6_FEATURES.values():
            assert set(feats) == set(FEATURES)

    def test_rows_shape(self):
        rows = table6_rows()
        assert len(rows) == 8
        assert all(len(r) == 1 + len(FEATURES) for r in rows)


class TestPredictorPretraining:
    def test_training_series_kinds(self):
        for kind in ("poisson", "wiki", "wits"):
            series = training_series_for(kind, duration_s=400.0, seed=1)
            assert len(series) == 40
            assert np.all(series >= 0)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            training_series_for("bogus")

    def test_pretrained_predictor_cached(self):
        a = pretrained_predictor("poisson", model="ewma")
        b = pretrained_predictor("poisson", model="ewma")
        assert a is b

    def test_pretrained_unknown_model(self):
        with pytest.raises(ValueError):
            pretrained_predictor("poisson", model="oracle")


class TestPolicyExperiments:
    def test_prototype_small_run(self):
        results = run_prototype(
            "light", policies=["bline", "rscale"],
            duration_s=60.0, mean_rate_rps=20.0, seed=1,
        )
        assert set(results) == {"bline", "rscale"}
        for r in results.values():
            assert r.n_completed == r.n_jobs > 0
            assert r.mix == "light"

    def test_prototype_cluster_is_80_cores(self):
        assert prototype_cluster().total_cores == 80.0

    def test_simulation_cluster_scales(self):
        spec = simulation_cluster(rate_scale=10.0)
        assert spec.total_cores == pytest.approx(2500.0 / 10.0, rel=0.1)

    def test_scaled_traces(self):
        wiki = make_scaled_trace("wiki", duration_s=120.0, rate_scale=10.0)
        wits = make_scaled_trace("wits", duration_s=120.0, rate_scale=10.0)
        assert wiki.mean_rate_rps == pytest.approx(150.0, rel=0.2)
        assert wits.mean_rate_rps == pytest.approx(30.0, rel=0.3)
        with pytest.raises(ValueError):
            make_scaled_trace("nasdaq")

    def test_trace_simulation_small_run(self):
        results = run_trace_simulation(
            "wits", "light", policies=["bline", "sbatch"],
            duration_s=90.0, seed=2,
        )
        assert set(results) == {"bline", "sbatch"}
        for r in results.values():
            assert r.n_jobs > 0
            assert r.trace == "wits"
