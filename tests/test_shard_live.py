"""Tests for the sharded live plane: journal single-writer locking,
per-shard durability filenames, registry snapshot/merge, and a 2-shard
end-to-end smoke under a compressed clock."""

import os
import pathlib

import pytest

from repro.obs.registry import MetricsRegistry
from repro.runtime.system import ClusterSpec
from repro.serve import ServeOptions
from repro.serve.checkpoint import checkpoint_basename
from repro.serve.journal import (
    JournalLockedError,
    RequestJournal,
    journal_basename,
)
from repro.shard.live import (
    ShardedServeResult,
    merge_registry_snapshots,
    serve_sharded,
    snapshot_registry,
)
from repro.traces import poisson_trace
from repro.workloads import get_mix

FAST = 0.005  # one model second in 5 wall ms


# ---------------------------------------------------------------------------
# journal single-writer lock


def test_writer_in_another_live_process_is_rejected(tmp_path):
    # A sentinel owned by a live foreign pid (pid 1 is always alive
    # and never us) must reject the open, not interleave the WAL.
    path = tmp_path / "journal.jsonl"
    (tmp_path / "journal.jsonl.lock").write_text("1:1")
    with pytest.raises(JournalLockedError):
        RequestJournal(path)


def test_cross_process_second_writer_is_rejected(tmp_path):
    import subprocess
    import sys
    import textwrap

    path = tmp_path / "journal.jsonl"
    first = RequestJournal(path)
    script = textwrap.dedent(f"""
        from repro.serve.journal import JournalLockedError, RequestJournal
        try:
            RequestJournal({str(path)!r})
        except JournalLockedError:
            print("REJECTED")
        else:
            print("INTERLEAVED")
    """)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    out = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True,
        env=dict(os.environ, PYTHONPATH=src), check=True,
    ).stdout
    assert "REJECTED" in out
    first.close()
    # The sentinel is released on close, so a successor may reopen.
    second = RequestJournal(path)
    second.close()


def test_same_process_respawn_steals_the_lock(tmp_path):
    # Crash injection respawns the gateway inside one process without
    # closing the dead journal handle; the successor must be able to
    # reopen the same path (same-pid sentinels are stale by
    # definition — one thread of control per process owns the WAL).
    path = tmp_path / "journal.jsonl"
    first = RequestJournal(path)
    second = RequestJournal(path)
    second.close()
    assert not (tmp_path / "journal.jsonl.lock").exists()


def test_stale_lock_from_dead_pid_is_stolen(tmp_path):
    path = tmp_path / "journal.jsonl"
    # Forge a sentinel owned by a pid that cannot exist.
    lock_path = tmp_path / "journal.jsonl.lock"
    lock_path.write_text("999999999:1")
    journal = RequestJournal(path)  # steals silently
    assert lock_path.read_text().startswith(f"{os.getpid()}:")
    journal.close()
    assert not lock_path.exists()


def test_unreadable_lock_relic_is_stolen(tmp_path):
    path = tmp_path / "journal.jsonl"
    (tmp_path / "journal.jsonl.lock").write_text("not-a-pid")
    journal = RequestJournal(path)
    journal.close()


def test_release_never_unlinks_a_successors_lock(tmp_path):
    path = tmp_path / "journal.jsonl"
    lock_path = tmp_path / "journal.jsonl.lock"
    first = RequestJournal(path)
    # Simulate a crashed-then-respawned writer in the same process: the
    # successor steals the (same-pid) sentinel while the original
    # handle is still around.
    second_lock = type(first._lock)(pathlib.Path(path))
    first.close()  # must NOT remove the successor's sentinel
    assert lock_path.exists()
    assert lock_path.read_text() == second_lock._content
    second_lock.release()
    assert not lock_path.exists()


# ---------------------------------------------------------------------------
# per-shard durability filenames and options


def test_shard_keyed_basenames():
    assert journal_basename() == "journal.jsonl"
    assert journal_basename(0, 1) == "journal.jsonl"
    assert journal_basename(2, 4) == "journal-2.jsonl"
    assert checkpoint_basename() == "checkpoint.json"
    assert checkpoint_basename(1, 2) == "checkpoint-1.json"


def test_serve_options_shard_validation():
    ServeOptions(shard_id=1, n_shards=2)
    with pytest.raises(ValueError):
        ServeOptions(n_shards=0)
    with pytest.raises(ValueError):
        ServeOptions(shard_id=2, n_shards=2)
    with pytest.raises(ValueError):
        ServeOptions(shard_id=-1, n_shards=2)


# ---------------------------------------------------------------------------
# registry snapshot / merge


def test_registry_snapshot_merge_reconciles():
    regs = []
    for i in (1, 2):
        reg = MetricsRegistry()
        reg.counter("jobs_total").inc(10 * i)
        reg.counter("pool_tasks_total", pool="ASR").inc(i)
        reg.gauge("queue_depth").set(3 * i)
        hist = reg.histogram("latency_ms")
        for v in range(i * 5):
            hist.observe(float(v))
        regs.append(reg)
    merged = merge_registry_snapshots(
        [snapshot_registry(r) for r in regs])
    assert merged.total("jobs_total") == 30
    assert merged.value("pool_tasks_total", pool="ASR") == 3
    assert merged.value("queue_depth") == 9
    hist = merged.merged_histogram("latency_ms")
    assert hist.count == 15
    assert hist.min == 0.0 and hist.max == 9.0
    # Exactness: merged sum equals the concatenated-sample sum.
    assert hist.sum == sum(float(v) for v in range(5)) \
        + sum(float(v) for v in range(10))


# ---------------------------------------------------------------------------
# end-to-end 2-shard live smoke


def test_two_shard_live_serve_smoke(tmp_path):
    mix = get_mix("medium")
    trace = poisson_trace(rate_rps=6.0, duration_s=8.0, seed=7)
    options = ServeOptions(
        time_scale=FAST,
        drain_timeout_ms=20_000.0,
        journal_dir=str(tmp_path),
        checkpoint_interval_ms=2_000.0,
    )
    result = serve_sharded(
        "rscale", mix, trace, shards=2,
        cluster_spec=ClusterSpec(n_nodes=4), seed=7, options=options)
    assert isinstance(result, ShardedServeResult)
    assert result.mode == "live"
    assert result.n_jobs == len(trace.arrivals_ms)
    assert sorted(result.per_shard) == [0, 1]
    # Per-shard durability artifacts under one directory, no contention.
    for shard_id in (0, 1):
        assert (tmp_path / f"journal-{shard_id}.jsonl").exists()
    # Journal conservation holds on both shards, and the merged
    # registry reconciles with the per-shard sums.
    assert result.journal_conserved
    assert set(result.journal) == {0, 1}
    assert int(result.registry.total("jobs_created_total")) \
        == result.n_jobs
    per_shard_appends = sum(
        r.journal_appends for r in result.per_shard.values())
    assert int(result.registry.total("journal_appends_total")) \
        == per_shard_appends
    summary = result.summary()
    assert summary["journal_conserved"] is True
    assert summary["journal_jobs_admitted"] == result.n_jobs


def test_serve_sharded_one_shard_is_plain_runresult(tmp_path):
    mix = get_mix("medium")
    trace = poisson_trace(rate_rps=6.0, duration_s=5.0, seed=3)
    options = ServeOptions(time_scale=FAST, drain_timeout_ms=15_000.0)
    result = serve_sharded(
        "rscale", mix, trace, shards=1,
        cluster_spec=ClusterSpec(n_nodes=2), seed=3, options=options)
    assert not isinstance(result, ShardedServeResult)
    assert result.n_jobs == len(trace.arrivals_ms)


def test_serve_sharded_rejects_preassigned_identity():
    mix = get_mix("medium")
    trace = poisson_trace(rate_rps=5.0, duration_s=2.0, seed=1)
    with pytest.raises(ValueError, match="shard identities"):
        serve_sharded(
            "rscale", mix, trace, shards=2,
            options=ServeOptions(shard_id=1, n_shards=2))
