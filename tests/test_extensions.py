"""Tests for extensions: HPA baseline, online retraining, predictor
fault resilience, and the command-line interface."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.coldstart import ColdStartModel
from repro.core.policies import EXTENDED_POLICY_NAMES, make_policy_config
from repro.core.scaling import HPAScaler, ProactiveScaler
from repro.core.scheduling import SchedulingPolicy
from repro.prediction.base import Predictor
from repro.prediction.classical import EWMAPredictor
from repro.prediction.lstm import LSTMPredictor
from repro.prediction.online import OnlineRetrainingPredictor
from repro.prediction.windowed import WindowedMaxSampler
from repro.sim.engine import Simulator
from repro.traces import step_poisson_trace
from repro.workflow.job import Job, Task
from repro.workflow.pool import FunctionPool
from repro.workloads import get_application, get_microservice, get_mix
from repro.runtime.system import run_policy


def _pool(sim, batch_size=2, n_nodes=4):
    cluster = Cluster(n_nodes=n_nodes)
    return FunctionPool(
        sim=sim,
        service=get_microservice("ASR"),
        cluster=cluster,
        batch_size=batch_size,
        stage_slack_ms=300.0,
        stage_response_ms=350.0,
        scheduling=SchedulingPolicy.FIFO,
        cold_start=ColdStartModel(jitter_sigma=0.0),
        rng=np.random.default_rng(0),
        on_task_finished=lambda t: None,
    )


def _enqueue(pool, n):
    for _ in range(n):
        job = Job(app=get_application("ipa"), arrival_ms=pool.sim.now)
        pool.enqueue(Task(job=job, stage_index=0, enqueue_ms=pool.sim.now))


class TestHPAScaler:
    def test_scales_up_on_concurrency(self):
        sim = Simulator()
        pool = _pool(sim, batch_size=2)
        scaler = HPAScaler({"ASR": pool}, target_concurrency=2)
        _enqueue(pool, 8)
        spawned = scaler.tick(sim.now)
        assert spawned == 4  # ceil(8 / 2)
        assert scaler.events[0].kind == "hpa-up"

    def test_desired_never_below_one(self):
        sim = Simulator()
        pool = _pool(sim)
        scaler = HPAScaler({"ASR": pool}, target_concurrency=4)
        assert scaler.desired_replicas(pool) == 1

    def test_scale_down_needs_stabilization(self):
        sim = Simulator()
        pool = _pool(sim)
        pool.prewarm(4)
        sim.run(until=1.0)
        scaler = HPAScaler({"ASR": pool}, target_concurrency=2,
                           scale_down_stabilization_ticks=3)
        # Desired is 1, current is 4 — needs three consecutive low ticks.
        scaler.tick(1.0)
        scaler.tick(2.0)
        assert pool.n_containers == 4
        scaler.tick(3.0)
        assert pool.n_containers == 1
        assert any(e.kind == "hpa-down" for e in scaler.events)

    def test_burst_resets_stabilization(self):
        sim = Simulator()
        pool = _pool(sim, batch_size=4)
        pool.prewarm(4)
        sim.run(until=1.0)
        scaler = HPAScaler({"ASR": pool}, target_concurrency=4,
                           scale_down_stabilization_ticks=2)
        scaler.tick(1.0)  # below target once
        _enqueue(pool, 16)  # concurrency jumps back
        scaler.tick(2.0)
        assert scaler._below_target["ASR"] == 0

    def test_invalid_params(self):
        sim = Simulator()
        pool = _pool(sim)
        with pytest.raises(ValueError):
            HPAScaler({"ASR": pool}, target_concurrency=0)
        with pytest.raises(ValueError):
            HPAScaler({"ASR": pool}, scale_down_stabilization_ticks=0)

    def test_hpa_policy_end_to_end(self):
        trace = step_poisson_trace(20.0, 120.0, seed=1)
        result = run_policy("hpa", get_mix("light"), trace, seed=3)
        assert result.n_completed == result.n_jobs
        assert result.policy == "hpa"

    def test_hpa_config_guard(self):
        with pytest.raises(ValueError):
            make_policy_config("hpa", reactive=True)
        with pytest.raises(ValueError):
            make_policy_config("hpa", fixed_batch_size=0)

    def test_extended_names(self):
        assert "hpa" in EXTENDED_POLICY_NAMES


class TestOnlineRetraining:
    def _series(self, n=120):
        t = np.arange(n)
        return 50.0 + 20.0 * np.sin(2 * np.pi * t / 12.0)

    def test_wraps_trainable_only(self):
        with pytest.raises(ValueError):
            OnlineRetrainingPredictor(EWMAPredictor())

    def test_refits_after_interval(self):
        base = LSTMPredictor(epochs=3, hidden=8, layers=1, lookback=5, seed=0)
        online = OnlineRetrainingPredictor(base, retrain_every=10,
                                           min_history=20)
        online.fit(self._series())
        for v in self._series(10):
            online.observe(float(v))
        assert online.refits == 1

    def test_history_limit_respected(self):
        base = LSTMPredictor(epochs=2, hidden=8, layers=1, lookback=5, seed=0)
        online = OnlineRetrainingPredictor(base, retrain_every=1000,
                                           history_limit=50)
        online.fit(self._series(200))
        assert len(online._observed) == 50

    def test_cold_start_fallback(self):
        base = LSTMPredictor(epochs=2, hidden=8, layers=1, lookback=5, seed=0)
        online = OnlineRetrainingPredictor(base, min_history=100)
        # Never fitted and too little history: falls back to last value.
        assert online.predict([10.0, 30.0]) == 30.0

    def test_auto_fit_once_enough_history(self):
        base = LSTMPredictor(epochs=2, hidden=8, layers=1, lookback=5, seed=0)
        online = OnlineRetrainingPredictor(base, retrain_every=10**6,
                                           min_history=30)
        for v in self._series(40):
            online.observe(float(v))
        pred = online.predict(self._series(10))
        assert np.isfinite(pred)
        assert online.refits >= 1

    def test_name_marks_wrapper(self):
        base = LSTMPredictor(epochs=2, hidden=8, layers=1, seed=0)
        assert "online" in OnlineRetrainingPredictor(base).name


class _ExplodingPredictor(Predictor):
    name = "boom"

    def predict(self, history):
        raise RuntimeError("model corrupted")


class TestProactiveResilience:
    def test_predictor_failure_degrades_to_observed_rate(self):
        sim = Simulator()
        pool = _pool(sim)
        sampler = WindowedMaxSampler()
        for t in np.arange(0.0, 50_000.0, 10.0):  # 100 req/s
            sampler.record(t)
        scaler = ProactiveScaler(
            pools={"ASR": pool},
            predictor=_ExplodingPredictor(),
            sampler=sampler,
            stage_shares={"ASR": 1.0},
        )
        sim.run(until=50_000.0)
        spawned = scaler.tick(sim.now)
        assert scaler.predictor_failures == 1
        # Fallback to last observed rate still provisions capacity.
        assert spawned > 0

    def test_online_predictor_receives_observations(self):
        sim = Simulator()
        pool = _pool(sim)
        sampler = WindowedMaxSampler()
        for t in np.arange(0.0, 20_000.0, 100.0):
            sampler.record(t)
        base = LSTMPredictor(epochs=2, hidden=8, layers=1, lookback=5, seed=0)
        online = OnlineRetrainingPredictor(base, retrain_every=10**6,
                                           min_history=10**6)
        scaler = ProactiveScaler(
            pools={"ASR": pool}, predictor=online, sampler=sampler,
            stage_shares={"ASR": 1.0},
        )
        sim.run(until=20_000.0)
        scaler.tick(sim.now)
        assert len(online._observed) == 1


class TestCLI:
    def test_tables_command(self, capsys):
        from repro.cli import main
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "Table 6" in out
        assert "fifer" in out.lower()

    def test_run_command(self, capsys):
        from repro.cli import main
        assert main([
            "run", "bline", "--duration", "30", "--rate", "10",
            "--mix", "light",
        ]) == 0
        out = capsys.readouterr().out
        assert "bline" in out and "SLO viol" in out

    def test_compare_command(self, capsys):
        from repro.cli import main
        assert main([
            "compare", "--policies", "bline", "rscale",
            "--duration", "30", "--rate", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "containers vs bline" in out

    def test_figures_command(self, capsys, tmp_path):
        from repro.cli import main
        assert main([
            "figures", "--policies", "bline", "--duration", "30",
            "--rate", "8", "--mix", "light", "--out", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "average containers" in out
        assert "CSV exports" in out
        assert (tmp_path / "light_step-poisson_summary.csv").exists()

    def test_unknown_policy_rejected(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["run", "magic"])

    def test_serve_help(self, capsys):
        from repro.cli import main
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--policy", "--time-scale", "--max-pending",
                     "--json-out", "--drain-timeout"):
            assert flag in out

    def test_serve_command(self, capsys, tmp_path):
        import json
        from repro.cli import main
        json_path = tmp_path / "serve.json"
        assert main([
            "serve", "--policy", "rscale", "--trace", "poisson",
            "--duration", "4", "--rate", "10", "--mix", "light",
            "--time-scale", "0.05", "--json-out", str(json_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "live rscale" in out and "SLO viol" in out
        assert "drained: yes" in out
        payload = json.loads(json_path.read_text())
        (record,) = payload["results"]
        assert record["policy"] == "rscale"
        assert record["mode"] == "live"
        assert record["jobs"] > 0
        assert record["drain_completed"] is True
