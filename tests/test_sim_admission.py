"""Slack-aware admission control in the simulator + tick containment."""

from types import SimpleNamespace

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.policies import make_policy_config
from repro.runtime.system import ClusterSpec, ServerlessSystem, run_policy
from repro.sim.engine import Simulator
from repro.traces import poisson_trace
from repro.workloads import get_application, get_mix


class FakePool:
    def __init__(self, free_slots, delay_ms):
        self.free_slots = free_slots
        self._delay_ms = delay_ms

    def monitored_delay_ms(self):
        return self._delay_ms


def _decider(pool):
    """A ServerlessSystem with only what ``_deadline_expired`` reads."""
    system = object.__new__(ServerlessSystem)
    app = get_application("ipa")
    system.pools = {app.stage_names[0]: pool}
    system.sim = SimpleNamespace(now=0.0)
    return system, app


class TestArrivalAdmissionDecision:
    def test_free_capacity_never_sheds(self):
        system, app = _decider(FakePool(free_slots=3, delay_ms=1e9))
        assert not system._deadline_expired(app)

    def test_saturated_stage_with_exhausted_slack_sheds(self):
        system, app = _decider(FakePool(free_slots=0, delay_ms=1e9))
        assert system._deadline_expired(app)

    def test_saturated_but_timely_stage_admits(self):
        system, app = _decider(FakePool(free_slots=0, delay_ms=0.0))
        assert not system._deadline_expired(app)

    @given(st.integers(min_value=0, max_value=64),
           st.floats(min_value=0.0, max_value=1e6,
                     allow_nan=False, allow_infinity=False))
    @settings(max_examples=150, deadline=None)
    def test_admission_invariant(self, free_slots, delay_ms):
        """The satellite property: an arrival whose residual slack is
        still positive, or that lands while capacity is free, is never
        shed."""
        system, app = _decider(FakePool(free_slots, delay_ms))
        shed = system._deadline_expired(app)
        if free_slots > 0:
            assert not shed
        elif delay_ms <= app.slack_ms:
            assert not shed
        else:
            assert shed


class TestSimShedExpired:
    @pytest.fixture(scope="class")
    def overloaded(self):
        """A deliberately starved cluster: shedding must engage."""
        mix = get_mix("medium")
        trace = poisson_trace(60.0, 60.0, seed=3)
        spec = ClusterSpec(n_nodes=1, cores_per_node=4)
        kwargs = dict(cluster_spec=spec, seed=3, drain_ms=240_000.0)
        plain = run_policy("rscale", mix, trace, **kwargs)
        shedding = run_policy("rscale", mix, trace, shed_expired=True,
                              **kwargs)
        return plain, shedding

    def test_overload_triggers_sheds(self, overloaded):
        _, shedding = overloaded
        assert shedding.shed_jobs > 0

    def test_shed_jobs_still_counted_as_created(self, overloaded):
        plain, shedding = overloaded
        # Shedding must not launder the workload: both runs saw the
        # same offered jobs.
        assert shedding.n_jobs == plain.n_jobs

    def test_sheds_settle_the_run(self, overloaded):
        _, shedding = overloaded
        assert (shedding.n_completed + shedding.n_failed
                + shedding.shed_jobs) == shedding.n_jobs

    def test_default_runs_never_shed(self):
        mix = get_mix("medium")
        trace = poisson_trace(20.0, 60.0, seed=3)
        result = run_policy("rscale", mix, trace, seed=3)
        assert result.shed_jobs == 0
        assert result.stage_sheds == 0

    def test_ample_capacity_sheds_nothing(self):
        mix = get_mix("medium")
        trace = poisson_trace(10.0, 60.0, seed=3)
        result = run_policy("rscale", mix, trace, seed=3,
                            shed_expired=True,
                            cluster_spec=ClusterSpec(n_nodes=8))
        assert result.shed_jobs == 0


class TestTickFaultContainment:
    def _system(self):
        return ServerlessSystem(
            config=make_policy_config("rscale"),
            mix=get_mix("medium"),
            cluster_spec=ClusterSpec(n_nodes=3),
            seed=3,
        )

    def test_poisoned_tick_does_not_kill_the_run(self):
        """Satellite (b): one scaler raising every tick degrades that
        step, never the run — parity with serve's ControlLoop."""
        system = self._system()
        sim = Simulator()
        trace = poisson_trace(20.0, 60.0, seed=3)
        monitor = system.attach(sim, trace)

        def poisoned_tick(now_ms):
            raise RuntimeError("scaler blew up")

        system.reactive.tick = poisoned_tick
        sim.run(until=trace.duration_ms + 1.0)
        monitor.stop()
        result = system.finalize()
        assert result.tick_errors > 0
        assert system.registry.value("scaling_tick_errors_total") \
            == result.tick_errors
        assert result.n_jobs > 0
        # Jobs still complete (prewarmed capacity serves them even with
        # the reactive scaler dead).
        assert result.n_completed > 0

    def test_healthy_run_has_no_tick_errors(self):
        mix = get_mix("medium")
        trace = poisson_trace(20.0, 60.0, seed=3)
        result = run_policy("rscale", mix, trace, seed=3)
        assert result.tick_errors == 0
