"""Stateful property-based testing of the pool/cluster/container core.

A hypothesis rule-based state machine drives a FunctionPool through
random interleavings of enqueue / spawn / prewarm / time-advance / reap
/ crash operations and checks the conservation invariants after every
step: tasks are never lost or duplicated, cluster CPU accounting matches
live containers, and capacity views stay consistent.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.cluster.coldstart import ColdStartModel
from repro.cluster.container import ContainerState
from repro.core.scheduling import SchedulingPolicy
from repro.sim.engine import Simulator
from repro.workflow.job import Job, Task
from repro.workflow.pool import FunctionPool
from repro.workloads import get_application, get_microservice


class PoolMachine(RuleBasedStateMachine):
    """Random operation sequences against one ASR pool on 2 nodes."""

    @initialize(
        batch_size=st.integers(min_value=1, max_value=6),
        spawn_on_demand=st.booleans(),
        scheduling=st.sampled_from(list(SchedulingPolicy)),
    )
    def setup(self, batch_size, spawn_on_demand, scheduling):
        self.sim = Simulator()
        self.cluster = Cluster(n_nodes=2, cores_per_node=4)
        self.finished = []
        self.submitted = 0
        self.pool = FunctionPool(
            sim=self.sim,
            service=get_microservice("ASR"),
            cluster=self.cluster,
            batch_size=batch_size,
            stage_slack_ms=300.0,
            stage_response_ms=350.0,
            scheduling=scheduling,
            cold_start=ColdStartModel(jitter_sigma=0.0),
            rng=np.random.default_rng(0),
            on_task_finished=self.finished.append,
            spawn_on_demand=spawn_on_demand,
        )
        self.pool.reclaim_callback = self.pool.reclaim_one_idle

    # -- operations --------------------------------------------------------

    @rule(n=st.integers(min_value=1, max_value=5))
    def submit_tasks(self, n):
        for _ in range(n):
            job = Job(app=get_application("ipa"), arrival_ms=self.sim.now)
            self.pool.enqueue(
                Task(job=job, stage_index=0, enqueue_ms=self.sim.now)
            )
            self.submitted += 1

    @rule(n=st.integers(min_value=1, max_value=3))
    def spawn_containers(self, n):
        self.pool.spawn(n)

    @rule(n=st.integers(min_value=1, max_value=3))
    def prewarm_containers(self, n):
        self.pool.prewarm(n)

    @rule(ms=st.floats(min_value=1.0, max_value=20_000.0))
    def advance_time(self, ms):
        self.sim.run(until=self.sim.now + ms)

    @rule(timeout=st.floats(min_value=0.0, max_value=30_000.0))
    def reap_idle(self, timeout):
        self.pool.reap_idle(idle_timeout_ms=timeout)

    @rule()
    def reclaim_one(self):
        self.pool.reclaim_one_idle()

    # -- invariants ----------------------------------------------------------

    @invariant()
    def no_task_lost_or_duplicated(self):
        in_queue = self.pool.queue_length
        in_containers = sum(
            c.occupied_slots
            for c in self.pool.containers
            if c.state != ContainerState.TERMINATED
        )
        done = len(self.finished)
        assert in_queue + in_containers + done == self.submitted

    @invariant()
    def cluster_cpu_matches_live_containers(self):
        live = self.pool.n_containers
        expected_cpu = live * self.pool.service.cpu_cores
        assert abs(self.cluster.allocated_cpu - expected_cpu) < 1e-6
        assert self.cluster.total_containers == live

    @invariant()
    def capacity_views_consistent(self):
        for container in self.pool.live_containers:
            assert 0 <= container.occupied_slots <= container.batch_size
            assert container.free_slots == (
                container.batch_size - container.occupied_slots
            )
        assert self.pool.free_slots >= 0
        assert self.pool.pending_capacity >= 0

    @invariant()
    def terminated_containers_hold_no_work(self):
        for container in self.pool.containers:
            if container.state == ContainerState.TERMINATED:
                assert container.current_task is None
                assert not container.local_queue

    @invariant()
    def completed_tasks_have_consistent_records(self):
        for task in self.finished:
            record = task.record
            assert record.end_ms >= record.start_ms >= record.enqueue_ms
            assert record.exec_ms > 0
            assert record.cold_start_wait_ms >= 0
            assert record.queue_delay_ms >= record.cold_start_wait_ms - 1e-9

    def teardown(self):
        # Drain fully: with enough time and capacity every task finishes.
        self.pool.spawn(2)
        self.sim.run(until=self.sim.now + 300_000.0)
        self.pool.dispatch()
        self.sim.run(until=self.sim.now + 300_000.0)
        if self.cluster.total_containers == 0 and self.pool.queue_length:
            # Cluster had no capacity at all — acceptable terminal state.
            return
        assert len(self.finished) == self.submitted


PoolMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestPoolStateMachine = PoolMachine.TestCase
