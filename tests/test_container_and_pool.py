"""Tests for container lifecycle and function pools."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.coldstart import ColdStartModel
from repro.cluster.container import Container, ContainerState
from repro.core.scheduling import SchedulingPolicy
from repro.sim.engine import Simulator
from repro.workflow.job import Job, Task
from repro.workflow.pool import FunctionPool
from repro.workloads import get_application, get_microservice


def _make_container(sim, batch_size=4, cold_start_ms=100.0, service="ASR"):
    cluster = Cluster(n_nodes=1)
    node = cluster.place()
    done = []
    container = Container(
        sim=sim,
        service=get_microservice(service),
        batch_size=batch_size,
        cold_start_ms=cold_start_ms,
        node=node,
        rng=np.random.default_rng(0),
        on_ready=lambda c: None,
        on_task_done=lambda c, t: done.append(t),
    )
    return container, done


def _task(app="ipa", stage=0, arrival=0.0, enqueue=0.0):
    job = Job(app=get_application(app), arrival_ms=arrival)
    task = Task(job=job, stage_index=stage, enqueue_ms=enqueue)
    task.record.enqueue_ms = enqueue
    return task


class TestContainer:
    def test_starts_spawning_then_ready(self):
        sim = Simulator()
        container, _ = _make_container(sim, cold_start_ms=500.0)
        assert container.state == ContainerState.SPAWNING
        assert not container.is_ready
        sim.run(until=600.0)
        assert container.state == ContainerState.IDLE
        assert container.is_ready

    def test_executes_assigned_task(self):
        sim = Simulator()
        container, done = _make_container(sim, cold_start_ms=100.0)
        task = _task()
        container.assign(task)
        sim.run(until=5000.0)
        assert done == [task]
        assert task.record.end_ms > task.record.start_ms >= 100.0
        assert container.tasks_executed == 1
        assert container.state == ContainerState.IDLE

    def test_cold_start_wait_attribution(self):
        sim = Simulator()
        container, _ = _make_container(sim, cold_start_ms=800.0)
        task = _task(enqueue=0.0)
        container.assign(task)
        sim.run(until=5000.0)
        # Task waited the full cold start.
        assert task.record.cold_start_wait_ms == pytest.approx(800.0)
        assert task.record.queue_delay_ms == pytest.approx(800.0)
        assert task.record.batching_wait_ms == pytest.approx(0.0)

    def test_batching_wait_attribution(self):
        sim = Simulator()
        container, _ = _make_container(sim, cold_start_ms=0.0)
        sim.run(until=1.0)  # become ready
        t1 = _task(enqueue=1.0)
        t2 = _task(enqueue=1.0)
        container.assign(t1)
        container.assign(t2)
        sim.run(until=5000.0)
        # Second task queued behind the first: pure batching delay.
        assert t2.record.cold_start_wait_ms == 0.0
        assert t2.record.batching_wait_ms > 0.0

    def test_sequential_processing(self):
        sim = Simulator()
        container, done = _make_container(sim, batch_size=3, cold_start_ms=0.0)
        tasks = [_task() for _ in range(3)]
        for t in tasks:
            container.assign(t)
        sim.run(until=10_000.0)
        assert done == tasks
        starts = [t.record.start_ms for t in tasks]
        ends = [t.record.end_ms for t in tasks]
        for i in range(1, 3):
            assert starts[i] == pytest.approx(ends[i - 1])

    def test_free_slots_accounting(self):
        sim = Simulator()
        container, _ = _make_container(sim, batch_size=2, cold_start_ms=0.0)
        assert container.free_slots == 2
        container.assign(_task())
        assert container.free_slots == 1
        container.assign(_task())
        assert container.free_slots == 0
        with pytest.raises(RuntimeError):
            container.assign(_task())

    def test_terminate_idle(self):
        sim = Simulator()
        container, _ = _make_container(sim, cold_start_ms=0.0)
        sim.run(until=1.0)
        container.terminate()
        assert container.state == ContainerState.TERMINATED
        with pytest.raises(RuntimeError):
            container.assign(_task())

    def test_terminate_busy_raises(self):
        sim = Simulator()
        container, _ = _make_container(sim, cold_start_ms=0.0)
        container.assign(_task())
        sim.run(until=1.0)
        with pytest.raises(RuntimeError):
            container.terminate()

    def test_invalid_batch_size(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            _make_container(sim, batch_size=0)


def _make_pool(
    sim,
    scheduling=SchedulingPolicy.LSF,
    batch_size=4,
    spawn_on_demand=False,
    n_nodes=2,
    service="ASR",
):
    cluster = Cluster(n_nodes=n_nodes)
    finished = []
    pool = FunctionPool(
        sim=sim,
        service=get_microservice(service),
        cluster=cluster,
        batch_size=batch_size,
        stage_slack_ms=300.0,
        stage_response_ms=350.0,
        scheduling=scheduling,
        cold_start=ColdStartModel(jitter_sigma=0.0),
        rng=np.random.default_rng(0),
        on_task_finished=finished.append,
        spawn_on_demand=spawn_on_demand,
    )
    return pool, cluster, finished


class TestFunctionPool:
    def test_enqueue_without_containers_queues(self):
        sim = Simulator()
        pool, _, _ = _make_pool(sim)
        pool.enqueue(_task())
        assert pool.queue_length == 1
        assert pool.n_containers == 0

    def test_prewarm_serves_immediately(self):
        sim = Simulator()
        pool, _, finished = _make_pool(sim)
        pool.prewarm(1)
        assert pool.total_spawns == 0  # prewarm is not a cold start
        assert pool.prewarmed == 1
        pool.enqueue(_task())
        sim.run(until=1000.0)
        assert len(finished) == 1
        assert finished[0].record.cold_start_wait_ms == 0.0

    def test_spawn_counts_cold_starts(self):
        sim = Simulator()
        pool, _, _ = _make_pool(sim)
        assert pool.spawn(2) == 2
        assert pool.total_spawns == 2
        assert len(pool.spawn_times_ms) == 2

    def test_spawn_on_demand_pins_task_to_cold_container(self):
        sim = Simulator()
        pool, _, finished = _make_pool(sim, spawn_on_demand=True, batch_size=1)
        pool.enqueue(_task())
        assert pool.n_containers == 1
        assert pool.queue_length == 0  # pinned into the container
        sim.run(until=60_000.0)
        assert len(finished) == 1
        # The pinned task paid the cold start (ASR ~ 5.75 s mean).
        assert finished[0].record.cold_start_wait_ms > 2000.0

    def test_spawn_on_demand_counts_pending_capacity(self):
        sim = Simulator()
        pool, _, _ = _make_pool(sim, spawn_on_demand=True, batch_size=1)
        pool.enqueue(_task())
        pool.enqueue(_task())
        # Two tasks, two containers, no storm beyond the deficit.
        assert pool.n_containers == 2
        pool.enqueue(_task())
        assert pool.n_containers == 3

    def test_no_spawn_when_warm_capacity_free(self):
        sim = Simulator()
        pool, _, _ = _make_pool(sim, spawn_on_demand=True, batch_size=1)
        pool.prewarm(2)
        sim.run(until=1.0)
        pool.enqueue(_task())
        assert pool.total_spawns == 0

    def test_greedy_dispatch_least_free_slots(self):
        sim = Simulator()
        pool, _, _ = _make_pool(sim, batch_size=3)
        pool.prewarm(2)
        sim.run(until=1.0)
        # Load container A with 1 task -> it has fewer free slots.
        first = _task()
        pool.enqueue(first)
        loaded = [c for c in pool.containers if c.occupied_slots][0]
        second = _task()
        pool.enqueue(second)
        # Greedy picks the loaded container again.
        assert loaded.occupied_slots == 2

    def test_dispatch_skips_spawning_containers(self):
        sim = Simulator()
        pool, _, _ = _make_pool(sim)
        pool.spawn(1)  # still cold
        pool.enqueue(_task())
        assert pool.queue_length == 1  # waits in the global queue

    def test_reap_idle_after_timeout(self):
        sim = Simulator()
        pool, cluster, _ = _make_pool(sim)
        pool.prewarm(2)
        sim.run(until=1.0)
        assert pool.reap_idle(idle_timeout_ms=10_000.0) == 0  # too fresh
        sim.run(until=20_000.0)
        assert pool.reap_idle(idle_timeout_ms=10_000.0) == 2
        assert pool.n_containers == 0
        assert cluster.total_containers == 0

    def test_reap_exempt_pool(self):
        sim = Simulator()
        pool, _, _ = _make_pool(sim)
        pool.reap_exempt = True
        pool.prewarm(1)
        sim.run(until=100_000.0)
        assert pool.reap_idle(idle_timeout_ms=1.0) == 0

    def test_busy_container_never_reaped(self):
        sim = Simulator()
        pool, _, _ = _make_pool(sim, batch_size=1)
        pool.prewarm(1)
        sim.run(until=1.0)
        pool.enqueue(_task())
        # Mid-execution: not reapable.
        assert pool.reap_idle(idle_timeout_ms=0.0) == 0

    def test_monitored_delay_includes_queue_age(self):
        sim = Simulator()
        pool, _, _ = _make_pool(sim)
        pool.enqueue(_task(enqueue=0.0))
        sim.run(until=5000.0)
        assert pool.oldest_waiting_age_ms() == pytest.approx(5000.0)
        assert pool.monitored_delay_ms() >= 5000.0

    def test_recent_queue_delay_window(self):
        sim = Simulator()
        pool, _, finished = _make_pool(sim, batch_size=2)
        pool.prewarm(1)
        pool.enqueue(_task())
        pool.enqueue(_task())
        sim.run(until=1000.0)
        assert len(finished) == 2
        assert pool.recent_queue_delay_ms() >= 0.0
        # After the window passes, the signal decays to zero.
        sim.run(until=60_000.0)
        assert pool.recent_queue_delay_ms() == 0.0

    def test_capacity_and_rpc_metrics(self):
        sim = Simulator()
        pool, _, _ = _make_pool(sim, batch_size=4)
        pool.prewarm(2)
        sim.run(until=1.0)
        assert pool.capacity_requests == 8
        for _ in range(6):
            pool.enqueue(_task())
        sim.run(until=10_000.0)
        assert pool.tasks_completed == 6
        assert pool.tasks_per_container() == pytest.approx(3.0)

    def test_rpc_includes_retired_containers(self):
        sim = Simulator()
        pool, _, _ = _make_pool(sim, batch_size=1)
        pool.prewarm(1)
        pool.enqueue(_task())
        sim.run(until=5000.0)
        pool.reap_idle(idle_timeout_ms=100.0)
        assert pool.tasks_per_container() == pytest.approx(1.0)

    def test_reclaim_one_idle(self):
        sim = Simulator()
        pool, cluster, _ = _make_pool(sim)
        pool.prewarm(2)
        sim.run(until=1.0)
        assert pool.reclaim_one_idle() is True
        assert pool.n_containers == 1
        pool.enqueue(_task())
        assert pool.reclaim_one_idle() in (True, False)

    def test_reclaim_callback_frees_capacity(self):
        sim = Simulator()
        pool, cluster, _ = _make_pool(sim, n_nodes=1, batch_size=1)
        # Fill the single node (32 containers at 0.5 cpu on 16 cores).
        pool.prewarm(32)
        sim.run(until=1.0)
        assert pool.spawn(1) == 0  # no callback wired -> fails
        pool.reclaim_callback = pool.reclaim_one_idle
        assert pool.spawn(1) == 1  # reclaims an idle sibling and places
