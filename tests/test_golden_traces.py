"""Golden-trace snapshot: the sim's span stream is frozen byte-for-byte.

A seeded simulation must keep emitting the same spans — same names,
same nesting, same (rounded) timestamps.  Ids that are legitimately
unstable across test orderings (the process-global job counter) are
normalized before diffing.  Refresh with ``pytest --update-golden``.
"""

import json
import pathlib

from repro.core.policies import make_policy_config
from repro.obs.export import validate_span_dict
from repro.obs.trace import Tracer
from repro.runtime.system import ClusterSpec, ServerlessSystem
from repro.traces import poisson_trace
from repro.workloads import get_mix

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
GOLDEN = GOLDEN_DIR / "sim_spans_rscale_poisson.jsonl"
GOLDEN_VECTOR = GOLDEN_DIR / "sim_spans_rscale_poisson_vector.jsonl"


def _run_spans(engine=None):
    tracer = Tracer()
    system = ServerlessSystem(
        config=make_policy_config("rscale", idle_timeout_ms=60_000.0),
        mix=get_mix("light"),
        cluster_spec=ClusterSpec(n_nodes=4),
        seed=7,
        tracer=tracer,
        engine=engine,
    )
    system.run(poisson_trace(4.0, 10.0, seed=7))
    return tracer.spans


def normalize_spans(spans):
    """Stable JSON records: job ids remapped to creation rank, times rounded.

    Raw job ids come from a process-global counter, so their absolute
    values depend on which tests ran first; they do increase with
    creation order, so ranking them yields an ordering-free labelling.
    Times are rounded to 1 us to absorb float *formatting* differences
    only — the sim clock itself is exactly deterministic.
    """
    records = [s.to_dict() for s in spans]
    old_nums = sorted({int(r["trace_id"].split("-")[1]) for r in records})
    rank = {n: i for i, n in enumerate(old_nums)}

    def renumber(value, old):
        return f"job-{rank[old]}" + value[len(f"job-{old}"):]

    out = []
    for r in records:
        old = int(r["trace_id"].split("-")[1])
        attrs = {
            k: (round(v, 3) if isinstance(v, float) else v)
            for k, v in r["attrs"].items()
        }
        if "job_id" in attrs:
            attrs["job_id"] = rank[old]
        out.append({
            "trace_id": renumber(r["trace_id"], old),
            "span_id": renumber(r["span_id"], old),
            "parent_id": (renumber(r["parent_id"], old)
                          if r["parent_id"] else None),
            "name": r["name"],
            "start_ms": round(r["start_ms"], 3),
            "end_ms": round(r["end_ms"], 3),
            "duration_ms": round(r["duration_ms"], 3),
            "attrs": attrs,
        })
    out.sort(key=lambda r: (r["start_ms"],
                            int(r["trace_id"].split("-")[1]),
                            r["span_id"]))
    return out


def _dumps(records):
    return "\n".join(json.dumps(r, sort_keys=True) for r in records) + "\n"


class TestGoldenTraces:
    def test_spans_match_golden(self, update_golden):
        records = normalize_spans(_run_spans())
        assert records, "seeded run emitted no spans"
        for r in records:
            validate_span_dict(r)
        text = _dumps(records)
        if update_golden:
            GOLDEN_DIR.mkdir(exist_ok=True)
            GOLDEN.write_text(text)
        golden = GOLDEN.read_text()
        assert text == golden, (
            f"span stream diverged from tests/golden/{GOLDEN.name} "
            "(run pytest --update-golden if the change is intended)"
        )

    def test_vector_spans_match_golden(self, update_golden):
        records = normalize_spans(_run_spans(engine="vector"))
        assert records, "seeded vector run emitted no spans"
        for r in records:
            validate_span_dict(r)
        text = _dumps(records)
        if update_golden:
            GOLDEN_DIR.mkdir(exist_ok=True)
            GOLDEN_VECTOR.write_text(text)
        golden = GOLDEN_VECTOR.read_text()
        assert text == golden, (
            f"vector span stream diverged from tests/golden/"
            f"{GOLDEN_VECTOR.name} "
            "(run pytest --update-golden if the change is intended)"
        )

    def test_vector_golden_equals_event_loop_golden(self):
        # The two snapshot files must stay byte-identical: the vector
        # engine's whole contract is emitting the same span stream as
        # the event-loop engines.
        assert GOLDEN_VECTOR.read_text() == GOLDEN.read_text()

    def test_normalization_is_id_offset_invariant(self):
        spans = _run_spans()
        base = normalize_spans(spans)
        for s in spans:  # simulate a shifted global job counter
            old = int(s.trace_id.split("-")[1])
            shifted = f"job-{old + 1000}"
            s.span_id = shifted + s.span_id[len(s.trace_id):]
            if s.parent_id:
                s.parent_id = shifted + s.parent_id[len(s.trace_id):]
            if "job_id" in s.attrs:
                s.attrs["job_id"] = old + 1000
            s.trace_id = shifted
        assert normalize_spans(spans) == base
