"""Differential harness: legacy vs fast vs vector engine parity.

The vector engine (``engine="vector"``) re-implements the whole
runtime as flat arrays and a batch-admitting run loop; its entire
correctness argument is *bit-identical equality* with the event-loop
engines.  These tests are that argument:

* a grid of (policy, mix, trace, seed) cells asserting the three
  engines produce identical ``RunResult`` summaries,
* targeted cells for the orthogonal switches (deadline shedding,
  control-plane blackouts, span tracing),
* a Hypothesis property drawing small random workloads and asserting
  three-way agreement,
* explicit ``VectorEngineUnsupported`` checks for the features the
  vector engine deliberately refuses to emulate.
"""

import re

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster.faults import (
    ContainerFaultModel,
    ControlPlaneBlackout,
    NodeFaultSchedule,
)
from repro.core.policies import EXTENDED_POLICY_NAMES, make_policy_config
from repro.obs.trace import Tracer
from repro.runtime.system import ClusterSpec, ServerlessSystem
from repro.runtime.vector import VectorEngineUnsupported
from repro.sim.engine import ENGINES, resolve_engine
from repro.traces.factory import TRACE_KINDS, make_trace
from repro.workloads import get_mix

ENGINE_TRIO = ("legacy", "fast", "vector")

#: fifer defaults to the LSTM predictor, which trains a network at
#: construction time — far too slow for a parity grid.  The EWMA
#: override exercises the same proactive scaling path.
_POLICY_OVERRIDES = {"fifer": {"proactive_predictor": "ewma"}}


def _summary(
    engine,
    policy,
    mix="heavy",
    trace_kind="poisson",
    rate=12.0,
    duration=25.0,
    seed=3,
    nodes=5,
    cores=16,
    drain_ms=None,
    shed_expired=False,
    control_blackout=None,
    tracer=None,
    **overrides,
):
    merged = dict(_POLICY_OVERRIDES.get(policy, {}))
    merged.update(overrides)
    system_kwargs = {} if drain_ms is None else {"drain_ms": drain_ms}
    system = ServerlessSystem(
        config=make_policy_config(policy, **merged),
        mix=get_mix(mix),
        cluster_spec=ClusterSpec(n_nodes=nodes, cores_per_node=cores),
        seed=seed,
        shed_expired=shed_expired,
        control_blackout=control_blackout,
        tracer=tracer,
        engine=engine,
        **system_kwargs,
    )
    trace = make_trace(trace_kind, rate, duration, seed)
    return system.run(trace).summary()


def _assert_three_way(policy, **kwargs):
    legacy = _summary("legacy", policy, **kwargs)
    fast = _summary("fast", policy, **kwargs)
    vector = _summary("vector", policy, **kwargs)
    assert fast == legacy, f"fast != legacy for {policy} {kwargs}"
    assert vector == legacy, f"vector != legacy for {policy} {kwargs}"
    return legacy


class TestEngineSelection:
    def test_resolve_engine_default_tracks_fast_path(self):
        assert resolve_engine(None, fast_path=True) == "fast"
        assert resolve_engine(None, fast_path=False) == "legacy"

    def test_resolve_engine_passthrough(self):
        for name in ENGINES:
            assert resolve_engine(name) == name

    def test_resolve_engine_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("warp")

    def test_system_records_engine(self):
        system = ServerlessSystem(
            config=make_policy_config("bline"),
            mix=get_mix("medium"),
            cluster_spec=ClusterSpec(n_nodes=3),
            engine="vector",
        )
        assert system.engine == "vector"
        assert system.fast_path  # vector implies the fast bookkeeping


class TestParityGrid:
    """Every policy, across traces and seeds, three engines agree."""

    @pytest.mark.parametrize("policy", sorted(EXTENDED_POLICY_NAMES))
    @pytest.mark.parametrize("trace_kind", TRACE_KINDS)
    def test_policy_trace_grid(self, policy, trace_kind):
        summary = _assert_three_way(
            policy,
            mix="heavy",
            trace_kind=trace_kind,
            rate=10.0,
            duration=20.0,
            seed=11,
            nodes=5,
        )
        assert summary["jobs"] > 0

    @pytest.mark.parametrize("mix", ["light", "medium", "heavy"])
    @pytest.mark.parametrize("seed", [1, 7])
    def test_mix_seed_grid(self, mix, seed):
        _assert_three_way(
            "rscale",
            mix=mix,
            trace_kind="step-poisson",
            rate=15.0,
            duration=20.0,
            seed=seed,
            nodes=6,
        )

    def test_shed_expired_parity(self):
        # A deliberately starved cluster (one 4-core node at 40 rps)
        # so shedding actually fires; otherwise the parity claim would
        # be vacuous for the shed code path.
        summary = _assert_three_way(
            "rscale",
            mix="medium",
            trace_kind="poisson",
            rate=60.0,
            duration=40.0,
            seed=3,
            nodes=1,
            cores=4,
            drain_ms=240_000.0,
            shed_expired=True,
        )
        assert summary["shed_jobs"] > 0

    def test_control_blackout_parity(self):
        summary = _assert_three_way(
            "rscale",
            mix="medium",
            trace_kind="poisson",
            rate=15.0,
            duration=25.0,
            seed=9,
            nodes=5,
            control_blackout=ControlPlaneBlackout(5_000.0, 12_000.0),
        )
        assert summary["shed_jobs"] > 0  # blackout-lost arrivals count as shed

    def test_tracer_parity_and_identical_spans(self):
        tracers = {}

        def run(engine):
            tracers[engine] = Tracer()
            return _summary(
                engine,
                "rscale",
                mix="heavy",
                trace_kind="poisson",
                rate=10.0,
                duration=15.0,
                seed=4,
                nodes=4,
                tracer=tracers[engine],
            )

        legacy, fast, vector = (run(e) for e in ENGINE_TRIO)
        assert fast == legacy
        assert vector == legacy

        def span_tuples(tracer):
            # Job ids come from a process-global counter, so their
            # absolute values depend on how many runs happened earlier
            # in the process; rebase to the run's first id before
            # comparing.
            base = min(
                int(s.attrs["job_id"])
                for s in tracer.spans
                if "job_id" in s.attrs
            )

            def rebase(value):
                if isinstance(value, str):
                    return re.sub(
                        r"job-(\d+)",
                        lambda m: f"job-{int(m.group(1)) - base}",
                        value,
                    )
                return value

            return [
                (
                    rebase(s.trace_id),
                    rebase(s.span_id),
                    s.name,
                    rebase(s.parent_id),
                    s.start_ms,
                    s.end_ms,
                    tuple(sorted(
                        (k, v - base if k == "job_id" else v)
                        for k, v in s.attrs.items()
                    )),
                )
                for s in tracer.spans
            ]

        assert span_tuples(tracers["fast"]) == span_tuples(
            tracers["legacy"])
        assert span_tuples(tracers["vector"]) == span_tuples(
            tracers["legacy"])

    def test_fixed_batch_and_single_use_parity(self):
        _assert_three_way(
            "hpa", mix="medium", trace_kind="wiki", rate=12.0,
            duration=20.0, seed=6, nodes=5,
        )
        _assert_three_way(
            "brigade", mix="heavy", trace_kind="wits", rate=8.0,
            duration=20.0, seed=6, nodes=5,
        )


class TestRandomWorkloadProperty:
    @given(
        policy=st.sampled_from(sorted(EXTENDED_POLICY_NAMES)),
        mix=st.sampled_from(["light", "medium", "heavy"]),
        trace_kind=st.sampled_from(TRACE_KINDS),
        rate=st.floats(min_value=2.0, max_value=14.0),
        duration=st.floats(min_value=5.0, max_value=15.0),
        seed=st.integers(min_value=0, max_value=2**20),
        nodes=st.integers(min_value=2, max_value=6),
        shed=st.booleans(),
    )
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_three_way_agreement(
        self, policy, mix, trace_kind, rate, duration, seed, nodes, shed
    ):
        _assert_three_way(
            policy,
            mix=mix,
            trace_kind=trace_kind,
            rate=rate,
            duration=duration,
            seed=seed,
            nodes=nodes,
            shed_expired=shed,
        )


class TestUnsupportedConfigs:
    def _system(self, **kwargs):
        return ServerlessSystem(
            config=make_policy_config("rscale"),
            mix=get_mix("medium"),
            cluster_spec=ClusterSpec(n_nodes=3),
            seed=1,
            engine="vector",
            **kwargs,
        )

    def _run(self, system):
        system.run(make_trace("poisson", 5.0, 5.0, 1))

    def test_container_fault_model_rejected(self):
        system = self._system(
            fault_model=ContainerFaultModel(crash_probability=0.1))
        with pytest.raises(VectorEngineUnsupported, match="fault"):
            self._run(system)

    def test_node_fault_schedule_rejected(self):
        system = self._system(
            node_fault_schedule=NodeFaultSchedule.parse("kill@10=0"))
        with pytest.raises(VectorEngineUnsupported):
            self._run(system)

    def test_input_scale_sampler_rejected(self):
        system = self._system(input_scale_sampler=lambda rng: 1.0)
        with pytest.raises(VectorEngineUnsupported):
            self._run(system)

    def test_attach_rejected(self):
        from repro.sim.engine import Simulator

        system = self._system()
        with pytest.raises(VectorEngineUnsupported, match="attach"):
            system.attach(Simulator(), make_trace("poisson", 5.0, 5.0, 1))
