"""Sim-vs-live parity: the serving runtime must agree with the simulator.

Same policy, mix, trace and seed through both worlds.  The replayer
draws applications from the same seeded stream as the simulator, so the
offered workload is bit-identical; what differs is only the clock (the
live run compresses time 20x) and real scheduling jitter.  Tolerances
(documented in EXPERIMENTS.md §live-serving):

* job count — exactly equal (deterministic replay),
* SLO-violation rate — within 0.10 absolute,
* peak concurrent containers — within 2,
* median latency — live may exceed sim by at most 250 model ms
  (event-loop jitter is amplified 20x by the compressed clock).
"""

import pytest

from repro.runtime.system import run_policy
from repro.serve import ServeOptions, serve_trace
from repro.traces import poisson_trace
from repro.workloads import get_mix

POLICY = "rscale"  # reactive-only: no offline predictor training needed
MIX = "medium"
RATE_RPS = 15.0
DURATION_S = 30.0
SEED = 0
TIME_SCALE = 0.05  # 30 model seconds in 1.5 wall seconds

SLO_TOLERANCE = 0.10
PEAK_TOLERANCE = 2
MEDIAN_SLACK_MS = 250.0


@pytest.fixture(scope="module")
def pair():
    mix = get_mix(MIX)
    trace = poisson_trace(RATE_RPS, DURATION_S, seed=SEED)
    sim = run_policy(
        POLICY, mix, trace, seed=SEED, idle_timeout_ms=60_000.0
    )
    live = serve_trace(
        POLICY, mix, trace, seed=SEED,
        options=ServeOptions(time_scale=TIME_SCALE),
        idle_timeout_ms=60_000.0,
    )
    return sim, live


class TestSimLiveParity:
    def test_same_offered_workload(self, pair):
        sim, live = pair
        assert live.n_jobs == sim.n_jobs
        assert live.trace == sim.trace
        assert live.policy == sim.policy

    def test_all_jobs_complete(self, pair):
        sim, live = pair
        assert sim.n_incomplete == 0
        assert live.n_incomplete == 0

    def test_slo_violation_rate_within_tolerance(self, pair):
        sim, live = pair
        assert abs(live.slo_violation_rate - sim.slo_violation_rate) \
            <= SLO_TOLERANCE

    def test_peak_containers_within_tolerance(self, pair):
        sim, live = pair
        assert abs(live.peak_containers - sim.peak_containers) \
            <= PEAK_TOLERANCE

    def test_median_latency_close(self, pair):
        sim, live = pair
        # Live latency is sim latency plus bounded wall-clock jitter —
        # it should never be *faster* than the model by more than noise.
        assert live.median_latency_ms >= sim.median_latency_ms - 50.0
        assert live.median_latency_ms <= sim.median_latency_ms + MEDIAN_SLACK_MS
