"""Sim-vs-live parity: the serving runtime must agree with the simulator.

Same policy, mix, trace and seed through both worlds.  The replayer
draws applications from the same seeded stream as the simulator, so the
offered workload is bit-identical; what differs is only the clock (the
live run compresses time 10x) and real scheduling jitter.  Tolerances
(documented in EXPERIMENTS.md §live-serving):

* job count — exactly equal (deterministic replay),
* SLO-violation rate — within 0.10 absolute,
* peak concurrent containers — within 2,
* median latency — live may exceed sim by at most 250 model ms
  (event-loop jitter is amplified 10x by the compressed clock; at the
  previous 20x compression a 15 ms wall hiccup already read as 300
  model ms and the bound was a coin flip on a loaded host).
"""

import pytest

from repro.cluster.faults import ContainerFaultModel
from repro.runtime.system import run_policy
from repro.serve import (
    FaultConfig,
    RetryPolicy,
    ServeOptions,
    serve_trace,
)
from repro.traces import poisson_trace
from repro.workloads import get_mix

POLICY = "rscale"  # reactive-only: no offline predictor training needed
MIX = "medium"
RATE_RPS = 15.0
DURATION_S = 30.0
SEED = 0
TIME_SCALE = 0.1  # 30 model seconds in 3 wall seconds

SLO_TOLERANCE = 0.10
PEAK_TOLERANCE = 2
MEDIAN_SLACK_MS = 250.0


@pytest.fixture(scope="module")
def pair():
    mix = get_mix(MIX)
    trace = poisson_trace(RATE_RPS, DURATION_S, seed=SEED)
    sim = run_policy(
        POLICY, mix, trace, seed=SEED, idle_timeout_ms=60_000.0
    )
    live = serve_trace(
        POLICY, mix, trace, seed=SEED,
        options=ServeOptions(time_scale=TIME_SCALE),
        idle_timeout_ms=60_000.0,
    )
    return sim, live


class TestSimLiveParity:
    def test_same_offered_workload(self, pair):
        sim, live = pair
        assert live.n_jobs == sim.n_jobs
        assert live.trace == sim.trace
        assert live.policy == sim.policy

    def test_all_jobs_complete(self, pair):
        sim, live = pair
        assert sim.n_incomplete == 0
        assert live.n_incomplete == 0

    def test_slo_violation_rate_within_tolerance(self, pair):
        sim, live = pair
        assert abs(live.slo_violation_rate - sim.slo_violation_rate) \
            <= SLO_TOLERANCE

    def test_peak_containers_within_tolerance(self, pair):
        sim, live = pair
        assert abs(live.peak_containers - sim.peak_containers) \
            <= PEAK_TOLERANCE

    def test_median_latency_close(self, pair):
        sim, live = pair
        # Live latency is sim latency plus bounded wall-clock jitter —
        # it should never be *faster* than the model by more than noise.
        assert live.median_latency_ms >= sim.median_latency_ms - 50.0
        assert live.median_latency_ms <= sim.median_latency_ms + MEDIAN_SLACK_MS


# ---------------------------------------------------------------------------
# chaos mode: identical fault models through both worlds


CRASH_PROB = 0.1
CHAOS_SLO_TOLERANCE = 0.15  # crash timing adds variance on top of jitter


@pytest.fixture(scope="module")
def chaos_pair():
    """Sim and live runs injecting the *same* ContainerFaultModel.

    The simulator retries crashed tasks without bound, so the live side
    gets a generous attempt budget and no deadline cut-off — the paired
    runs then differ only in clock and crash-timing jitter.
    """
    mix = get_mix(MIX)
    trace = poisson_trace(RATE_RPS, DURATION_S, seed=SEED)
    sim = run_policy(
        POLICY, mix, trace, seed=SEED, idle_timeout_ms=60_000.0,
        fault_model=ContainerFaultModel(crash_probability=CRASH_PROB),
    )
    live = serve_trace(
        POLICY, mix, trace, seed=SEED,
        options=ServeOptions(
            time_scale=TIME_SCALE,
            faults=FaultConfig(crash_prob=CRASH_PROB),
            retry=RetryPolicy(max_attempts=10, base_backoff_ms=10.0),
            drain_timeout_ms=1_200_000.0,
        ),
        idle_timeout_ms=60_000.0,
    )
    return sim, live


class TestChaosParity:
    def test_same_offered_workload(self, chaos_pair):
        sim, live = chaos_pair
        assert live.n_jobs == sim.n_jobs

    def test_both_sides_injected_crashes(self, chaos_pair):
        sim, live = chaos_pair
        assert sim.container_crashes > 0
        assert live.container_crashes > 0
        assert sim.task_retries > 0
        assert live.task_retries > 0

    def test_work_survives_chaos_on_both_sides(self, chaos_pair):
        sim, live = chaos_pair
        assert sim.n_incomplete == 0
        # The live side may dead-letter a handful of jobs that the sim
        # (with unbounded retries) eventually completes.
        assert live.n_completed + live.n_failed == live.n_jobs
        assert live.n_completed >= 0.9 * live.n_jobs

    def test_slo_violation_rate_within_chaos_tolerance(self, chaos_pair):
        sim, live = chaos_pair
        assert abs(live.slo_violation_rate - sim.slo_violation_rate) \
            <= CHAOS_SLO_TOLERANCE
