"""Documentation consistency checks.

Keep DESIGN.md's per-experiment index and the README honest: every bench
file they reference must exist, the documented policies/tables must match
the code, and the README quickstart must actually run.
"""

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]


class TestDesignDoc:
    @pytest.fixture(scope="class")
    def design(self):
        return (REPO / "DESIGN.md").read_text()

    def test_every_referenced_bench_exists(self, design):
        for name in set(re.findall(r"bench_\w+\.py", design)):
            assert (REPO / "benchmarks" / name).exists(), name

    def test_every_bench_file_is_indexed(self, design):
        for bench in (REPO / "benchmarks").glob("bench_*.py"):
            assert bench.name in design, f"{bench.name} missing from DESIGN.md"

    def test_referenced_modules_exist(self, design):
        for dotted in set(re.findall(r"`((?:core|cluster|workflow|traces|"
                                     r"workloads|prediction|metrics|"
                                     r"experiments)\.\w+)`", design)):
            module_path = REPO / "src" / "repro" / (dotted.replace(".", "/") + ".py")
            attr_parent = REPO / "src" / "repro" / (dotted.split(".")[0] + "/" + dotted.split(".")[1] + ".py")
            assert module_path.exists() or attr_parent.exists(), dotted

    def test_paper_match_confirmed(self, design):
        assert "No title collision" in design


class TestReadme:
    @pytest.fixture(scope="class")
    def readme(self):
        return (REPO / "README.md").read_text()

    def test_examples_listed_exist(self, readme):
        for name in set(re.findall(r"`(\w+\.py)`", readme)):
            assert (REPO / "examples" / name).exists(), name

    def test_policies_documented(self, readme):
        from repro.core.policies import POLICY_NAMES
        for policy in POLICY_NAMES:
            assert f"`{policy}`" in readme

    def test_quickstart_code_runs(self, readme):
        blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
        assert blocks, "README must contain a python quickstart block"
        code = blocks[0]
        # Shrink the workload so the doc test stays fast.
        code = code.replace("step_poisson_trace(50.0, 300.0)",
                            "step_poisson_trace(20.0, 60.0)")
        code = code.replace("step_poisson_trace(50.0, 1200.0, seed=99)",
                            "step_poisson_trace(20.0, 400.0, seed=99)")
        code = code.replace("LSTMPredictor()",
                            "LSTMPredictor(epochs=3, hidden=8, layers=1)")
        namespace = {}
        exec(compile(code, "<README quickstart>", "exec"), namespace)


class TestExamples:
    def test_examples_have_docstrings_and_main(self):
        for script in (REPO / "examples").glob("*.py"):
            text = script.read_text()
            assert text.lstrip().startswith(('"""', '#!')), script.name
            assert "__main__" in text, script.name

    def test_at_least_five_examples(self):
        assert len(list((REPO / "examples").glob("*.py"))) >= 5
