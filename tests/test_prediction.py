"""Tests for the eight load-prediction models and their harness."""

import numpy as np
import pytest

from repro.prediction import (
    DeepARPredictor,
    EWMAPredictor,
    LinearRegressionPredictor,
    LogisticRegressionPredictor,
    LSTMPredictor,
    MovingWindowAveragePredictor,
    SimpleFeedForwardPredictor,
    WaveNetPredictor,
    default_predictors,
    evaluate_all,
    evaluate_predictor,
    windowed_max_series,
)
from repro.prediction.evaluate import train_test_split
from repro.prediction.nn import Adam, SeriesScaler, clip_gradients, sliding_windows
from repro.traces import poisson_trace, wiki_trace


@pytest.fixture(scope="module")
def sine_series():
    """A clean periodic series every decent model should learn."""
    t = np.arange(200)
    return 100.0 + 50.0 * np.sin(2 * np.pi * t / 20.0)


@pytest.fixture(scope="module")
def wiki_series():
    trace = wiki_trace(avg_rps=100.0, duration_s=1200.0, period_s=300.0, seed=5)
    return windowed_max_series(trace)


class TestClassicalPredictors:
    def test_mwa_is_mean_of_window(self):
        p = MovingWindowAveragePredictor(window=3)
        assert p.predict([1.0, 2.0, 3.0, 4.0, 5.0]) == pytest.approx(4.0)

    def test_mwa_short_history(self):
        assert MovingWindowAveragePredictor(window=10).predict([5.0]) == 5.0

    def test_ewma_recency_weighting(self):
        p = EWMAPredictor(alpha=0.5)
        # 0.5*4 + 0.5*(0.5*2 + 0.5*0) = 2.5
        assert p.predict([0.0, 2.0, 4.0]) == pytest.approx(2.5)

    def test_ewma_constant_series(self):
        assert EWMAPredictor().predict([7.0] * 10) == pytest.approx(7.0)

    def test_ewma_invalid_alpha(self):
        with pytest.raises(ValueError):
            EWMAPredictor(alpha=0.0)

    def test_linear_extrapolates_trend(self):
        p = LinearRegressionPredictor(window=5)
        assert p.predict([10.0, 20.0, 30.0, 40.0, 50.0]) == pytest.approx(60.0)

    def test_linear_never_negative(self):
        p = LinearRegressionPredictor(window=5)
        assert p.predict([50.0, 40.0, 30.0, 20.0, 10.0]) == pytest.approx(0.0)

    def test_logistic_saturating_ramp(self):
        p = LogisticRegressionPredictor(window=10)
        ramp = [1, 5, 20, 50, 80, 95, 99, 100, 100, 100]
        pred = p.predict([float(x) for x in ramp])
        assert 80.0 <= pred <= 125.0

    def test_logistic_constant_series(self):
        p = LogisticRegressionPredictor()
        assert p.predict([10.0] * 10) == pytest.approx(10.0)

    def test_empty_history_raises(self):
        for p in [MovingWindowAveragePredictor(), EWMAPredictor(),
                  LinearRegressionPredictor(), LogisticRegressionPredictor()]:
            with pytest.raises(ValueError):
                p.predict([])

    def test_predict_horizon_feeds_back(self):
        p = MovingWindowAveragePredictor(window=2)
        path = p.predict_horizon([2.0, 4.0], steps=3)
        assert path.shape == (3,)
        assert path[0] == pytest.approx(3.0)


class TestNNUtilities:
    def test_scaler_roundtrip(self):
        s = SeriesScaler().fit(np.array([0.0, 50.0, 200.0]))
        assert s.transform(np.array([100.0]))[0] == pytest.approx(0.5)
        assert s.inverse(0.5) == pytest.approx(100.0)

    def test_scaler_zero_series(self):
        s = SeriesScaler().fit(np.zeros(5))
        assert s.scale == 1.0

    def test_sliding_windows_shapes(self):
        x, y = sliding_windows(np.arange(10.0), lookback=3)
        assert x.shape == (7, 3)
        assert y.shape == (7,)
        assert list(x[0]) == [0.0, 1.0, 2.0]
        assert y[0] == 3.0

    def test_sliding_windows_too_short(self):
        x, y = sliding_windows(np.arange(3.0), lookback=5)
        assert x.shape == (0, 5)

    def test_adam_reduces_quadratic_loss(self):
        params = {"w": np.array([5.0])}
        opt = Adam(params, lr=0.1)
        for _ in range(200):
            opt.step({"w": 2.0 * params["w"]})  # d/dw of w^2
        assert abs(params["w"][0]) < 0.1

    def test_adam_rejects_unknown_grad(self):
        opt = Adam({"w": np.zeros(1)})
        with pytest.raises(KeyError):
            opt.step({"v": np.zeros(1)})

    def test_clip_gradients(self):
        grads = {"a": np.array([30.0, 40.0])}  # norm 50
        clipped = clip_gradients(grads, max_norm=5.0)
        norm = np.sqrt(np.sum(clipped["a"] ** 2))
        assert norm == pytest.approx(5.0)

    def test_clip_noop_when_small(self):
        grads = {"a": np.array([1.0])}
        assert clip_gradients(grads, max_norm=5.0)["a"][0] == 1.0


class TestNeuralPredictors:
    @pytest.mark.parametrize("factory", [
        lambda: SimpleFeedForwardPredictor(epochs=80, seed=0),
        lambda: LSTMPredictor(epochs=30, hidden=16, layers=1, seed=0),
        lambda: WaveNetPredictor(epochs=40, seed=0),
        lambda: DeepARPredictor(epochs=30, seed=0),
    ])
    def test_learns_periodic_series(self, factory, sine_series):
        model = factory()
        model.fit(sine_series[:150])
        errors = []
        for i in range(150, 195):
            pred = model.predict(sine_series[max(0, i - 20): i])
            errors.append(abs(pred - sine_series[i]))
        rmse = np.sqrt(np.mean(np.square(errors)))
        # Naive last-value RMSE on this sine is ~15.5; learning must beat it.
        assert rmse < 15.0

    def test_predict_before_fit_raises(self):
        for model in [SimpleFeedForwardPredictor(), LSTMPredictor(),
                      WaveNetPredictor(), DeepARPredictor()]:
            with pytest.raises(RuntimeError):
                model.predict([1.0, 2.0])

    def test_fit_too_short_raises(self):
        for model in [SimpleFeedForwardPredictor(lookback=10), LSTMPredictor(lookback=10)]:
            with pytest.raises(ValueError):
                model.fit(np.arange(5.0))

    def test_prediction_non_negative(self, sine_series):
        model = LSTMPredictor(epochs=5, hidden=8, layers=1, seed=0)
        model.fit(sine_series[:100])
        assert model.predict([0.0] * 10) >= 0.0

    def test_short_history_padded(self, sine_series):
        model = SimpleFeedForwardPredictor(epochs=5, seed=0)
        model.fit(sine_series[:100])
        # Shorter history than lookback still predicts.
        assert np.isfinite(model.predict([100.0, 120.0]))

    def test_deterministic_training(self, sine_series):
        a = LSTMPredictor(epochs=5, hidden=8, layers=1, seed=3).fit(sine_series[:100])
        b = LSTMPredictor(epochs=5, hidden=8, layers=1, seed=3).fit(sine_series[:100])
        hist = sine_series[100:110]
        assert a.predict(hist) == pytest.approx(b.predict(hist))

    def test_lstm_training_loss_decreases(self, sine_series):
        model = LSTMPredictor(epochs=20, hidden=16, layers=1, seed=0)
        model.fit(sine_series[:150])
        assert model.train_losses[-1] < model.train_losses[0]

    def test_deepar_quantile_ordering(self, sine_series):
        model = DeepARPredictor(epochs=10, seed=0)
        model.fit(sine_series[:150])
        hist = sine_series[150:160]
        q10 = model.predict_quantile(hist, 0.1)
        q50 = model.predict_quantile(hist, 0.5)
        q90 = model.predict_quantile(hist, 0.9)
        assert q10 <= q50 <= q90

    def test_deepar_invalid_quantile(self):
        model = DeepARPredictor()
        with pytest.raises(ValueError):
            model.predict_quantile([1.0], q=1.5)


class TestLSTMGradients:
    def test_backprop_matches_numerical_gradient(self):
        """Finite-difference check of the full BPTT implementation."""
        rng = np.random.default_rng(0)
        model = LSTMPredictor(lookback=5, hidden=4, layers=2, seed=1)
        x = rng.random((3, 5))
        y = rng.random(3)

        preds, ctx = model._forward(x)
        grads = model._backward(x, preds, y, ctx)

        def loss():
            p, _ = model._forward(x)
            return float(np.mean((p - y) ** 2))

        eps = 1e-5
        params = model._params()
        for name in ["w0", "w1", "w_out", "b0"]:
            param = params[name]
            flat_idx = (0,) * param.ndim  # probe the first element
            original = param[flat_idx]
            param[flat_idx] = original + eps
            up = loss()
            param[flat_idx] = original - eps
            down = loss()
            param[flat_idx] = original
            numeric = (up - down) / (2 * eps)
            analytic = grads[name][flat_idx]
            assert analytic == pytest.approx(numeric, rel=1e-3, abs=1e-6), name


class TestWindowedMaxSeries:
    def test_offline_series_shape(self):
        trace = poisson_trace(100.0, 120.0, seed=0)
        series = windowed_max_series(trace)
        assert len(series) == 12  # 120 s / 10 s intervals
        # Windowed max of Poisson(100) sits above the mean rate.
        assert series.mean() >= 100.0

    def test_invalid_window(self):
        trace = poisson_trace(10.0, 60.0, seed=0)
        with pytest.raises(ValueError):
            windowed_max_series(trace, interval_ms=5000.0, window_ms=10_000.0)


class TestEvaluation:
    def test_split_chronological(self):
        train, test = train_test_split(np.arange(10.0), 0.6)
        assert list(train) == [0, 1, 2, 3, 4, 5]
        assert list(test) == [6, 7, 8, 9]

    def test_split_too_short(self):
        with pytest.raises(ValueError):
            train_test_split([1.0, 2.0], 0.5)

    def test_evaluate_perfect_predictor(self):
        class Oracle(EWMAPredictor):
            name = "oracle"
            def predict(self, history):
                return 42.0

        series = np.full(50, 42.0)
        report = evaluate_predictor(Oracle(), series)
        assert report.rmse == pytest.approx(0.0)
        assert report.accuracy == pytest.approx(1.0)
        assert report.mean_latency_ms >= 0.0

    def test_evaluate_all_returns_report_per_model(self, wiki_series):
        models = [MovingWindowAveragePredictor(), EWMAPredictor()]
        reports = evaluate_all(models, wiki_series)
        assert [r.name for r in reports] == ["MWA", "EWMA"]
        for r in reports:
            assert r.rmse > 0
            assert len(r.predictions) == len(r.actuals)

    def test_default_predictors_are_the_figure6_eight(self):
        names = [p.name for p in default_predictors()]
        assert names == [
            "MWA", "EWMA", "Linear R.", "Logistic R.",
            "Simple FF.", "WeaveNet", "DeepArEst", "LSTM",
        ]

    def test_lstm_beats_naive_on_periodic_trace(self, wiki_series):
        lstm = LSTMPredictor(epochs=30, hidden=16, layers=2, seed=0)
        mwa = MovingWindowAveragePredictor()
        lstm_report = evaluate_predictor(lstm, wiki_series)
        mwa_report = evaluate_predictor(mwa, wiki_series)
        assert lstm_report.rmse < mwa_report.rmse
