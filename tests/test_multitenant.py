"""Tests for multi-tenant deployments on a shared cluster."""

import pytest

from repro.core.policies import make_policy_config
from repro.prediction.classical import EWMAPredictor
from repro.runtime.multitenant import (
    MultiTenantSystem,
    TenantSpec,
)
from repro.runtime.system import ClusterSpec
from repro.traces import poisson_trace
from repro.workloads import get_mix


def _spec(name, policy="rscale", mix="light", rate=10.0, duration=60.0,
          seed=1, predictor=None):
    config = make_policy_config(policy, idle_timeout_ms=60_000.0)
    if config.proactive_predictor == "ewma" and predictor is None:
        predictor = EWMAPredictor()
    return TenantSpec(
        name=name,
        config=config,
        mix=get_mix(mix),
        trace=poisson_trace(rate, duration, seed=seed),
        predictor=predictor,
        seed=seed,
    )


class TestMultiTenantSystem:
    def test_two_tenants_complete_all_jobs(self):
        mts = MultiTenantSystem([
            _spec("team-a", "rscale", "light", seed=1),
            _spec("team-b", "bline", "heavy", seed=2),
        ])
        result = mts.run()
        assert set(result.tenants) == {"team-a", "team-b"}
        for name, r in result.tenants.items():
            assert r.n_completed == r.n_jobs > 0, name

    def test_tenants_are_isolated(self):
        mts = MultiTenantSystem([
            _spec("a", "rscale", "light", seed=1),
            _spec("b", "rscale", "light", seed=2),
        ])
        mts.run()
        pools_a = mts.systems["a"].pools
        pools_b = mts.systems["b"].pools
        # Same functions, different pool objects (footnote 4: no sharing).
        assert set(pools_a) == set(pools_b)
        for fn in pools_a:
            assert pools_a[fn] is not pools_b[fn]
            ids_a = {c.container_id for c in pools_a[fn].containers}
            ids_b = {c.container_id for c in pools_b[fn].containers}
            assert not ids_a & ids_b

    def test_shared_cluster_accounts_both_tenants(self):
        mts = MultiTenantSystem([
            _spec("a", seed=1),
            _spec("b", seed=2),
        ])
        result = mts.run()
        cluster = mts.systems["a"].cluster
        assert cluster is mts.systems["b"].cluster
        per_tenant_peak = max(
            r.peak_containers for r in result.tenants.values()
        )
        assert result.peak_total_containers >= per_tenant_peak

    def test_energy_metered_once(self):
        mts = MultiTenantSystem([
            _spec("a", seed=1),
            _spec("b", seed=2),
        ])
        result = mts.run()
        assert result.cluster_energy_joules > 0
        # Tenants skipped their own sampling: per-tenant energy is zero.
        for r in result.tenants.values():
            assert r.energy_joules == 0.0

    def test_total_violation_rate(self):
        mts = MultiTenantSystem([_spec("solo", seed=3)])
        result = mts.run()
        assert result.total_violation_rate() == pytest.approx(
            result.tenants["solo"].slo_violation_rate
        )

    def test_mixed_policies_contend_for_capacity(self):
        # A tiny cluster forces the tenants to contend; both still finish
        # (idle-reclaim keeps one tenant from starving the other).
        mts = MultiTenantSystem(
            [
                _spec("greedy", "bline", "heavy", rate=15.0, seed=4),
                _spec("frugal", "rscale", "light", rate=15.0, seed=5),
            ],
            cluster_spec=ClusterSpec(n_nodes=2, cores_per_node=8.0),
        )
        result = mts.run()
        for name, r in result.tenants.items():
            assert r.n_completed == r.n_jobs, name

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiTenantSystem([])
        with pytest.raises(ValueError):
            MultiTenantSystem([_spec("dup", seed=1), _spec("dup", seed=2)])

    def test_different_trace_lengths(self):
        mts = MultiTenantSystem([
            _spec("short", duration=30.0, seed=1),
            _spec("long", duration=90.0, seed=2),
        ])
        result = mts.run()
        assert result.tenants["long"].n_jobs > result.tenants["short"].n_jobs
        for r in result.tenants.values():
            assert r.n_completed == r.n_jobs
