"""Tests for synthetic chain generation and the cluster-scaling study."""

import numpy as np
import pytest

from repro.core.slack import build_stage_plan
from repro.experiments.scaling_study import container_savings, run_scaling_study
from repro.runtime.system import ClusterSpec, run_policy
from repro.traces import poisson_trace
from repro.workloads.generator import (
    generate_chain,
    generate_mix,
    synthesize_microservice,
)
from repro.workloads.microservices import MICROSERVICES


class TestSynthesizeMicroservice:
    def test_exec_within_range(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            svc = synthesize_microservice("X", rng, exec_range_ms=(2.0, 80.0))
            assert 2.0 <= svc.mean_exec_ms <= 80.0

    def test_invalid_range(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            synthesize_microservice("X", rng, exec_range_ms=(5.0, 2.0))

    def test_log_uniform_spreads_small_values(self):
        rng = np.random.default_rng(1)
        execs = [
            synthesize_microservice("X", rng, (1.0, 100.0)).mean_exec_ms
            for _ in range(500)
        ]
        # Log-uniform: ~half the mass below the geometric mean (10).
        below = sum(1 for e in execs if e < 10.0)
        assert 0.35 < below / len(execs) < 0.65


class TestGenerateChain:
    def test_catalog_chain_feasible(self):
        app = generate_chain("custom", 3, seed=1)
        assert app.n_stages == 3
        assert app.slack_ms > 0
        # Stages drawn without replacement.
        assert len(set(app.stage_names)) == 3

    def test_synthetic_chain_feasible(self):
        app = generate_chain("synth", 4, seed=2, synthetic=True)
        assert app.n_stages == 4
        assert app.slack_ms > 0

    def test_deterministic(self):
        a = generate_chain("c", 3, seed=7)
        b = generate_chain("c", 3, seed=7)
        assert a.stage_names == b.stage_names

    def test_infeasible_repair(self):
        # A tight SLO forces replacement of long stages, still feasible.
        app = generate_chain("tight", 2, seed=3, slo_ms=400.0,
                             overhead_ms=30.0)
        assert app.slack_ms > 0
        assert app.total_exec_ms + app.total_overhead_ms < 400.0

    def test_too_many_stages(self):
        with pytest.raises(ValueError):
            generate_chain("big", 100, seed=0)

    def test_zero_stages(self):
        with pytest.raises(ValueError):
            generate_chain("none", 0)

    def test_plan_builds_on_generated_chain(self):
        app = generate_chain("planned", 3, seed=4)
        plan = build_stage_plan(app)
        assert all(b >= 1 for b in plan.stage_batch)
        assert sum(plan.stage_slack_ms) == pytest.approx(app.slack_ms)


class TestGenerateMix:
    def test_mix_shape(self):
        mix = generate_mix("custom", n_applications=3, seed=5)
        assert len(mix.applications) == 3
        assert sum(mix.weights) == pytest.approx(1.0)

    def test_generated_mix_runs_end_to_end(self):
        mix = generate_mix("e2e", n_applications=2, seed=6)
        trace = poisson_trace(10.0, 60.0, seed=1)
        result = run_policy("rscale", mix, trace, seed=3)
        assert result.n_completed == result.n_jobs > 0

    def test_synthetic_mix_runs_end_to_end(self):
        mix = generate_mix("synth-e2e", n_applications=2, seed=8,
                           synthetic=True)
        trace = poisson_trace(10.0, 60.0, seed=1)
        result = run_policy("bline", mix, trace, seed=3)
        assert result.n_completed == result.n_jobs > 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            generate_mix("m", n_applications=0)
        with pytest.raises(ValueError):
            generate_mix("m", stages_range=(0, 3))


class TestScalingStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_scaling_study(
            scales=((0.5, 15.0, 2), (1.0, 30.0, 4)),
            duration_s=90.0,
            seed=3,
        )

    def test_all_scales_complete(self, study):
        assert set(study) == {0.5, 1.0}
        for results in study.values():
            for r in results.values():
                assert r.n_completed == r.n_jobs

    def test_savings_positive_at_every_scale(self, study):
        for scale, results in study.items():
            assert container_savings(results) > 0.2, scale

    def test_savings_zero_for_empty_baseline(self):
        class Fake:
            avg_containers = 0.0
        assert container_savings({"bline": Fake(), "fifer": Fake()}) == 0.0
