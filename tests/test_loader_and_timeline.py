"""Tests for trace persistence and time-resolved metrics."""

import numpy as np
import pytest

from repro.metrics.timeline import (
    TimelineSummary,
    containers_over_time,
    rolling_latency_percentile,
    rolling_violation_rate,
    spawn_rate_series,
)
from repro.traces import poisson_trace
from repro.traces.base import ArrivalTrace, RateProfile, trace_from_profile
from repro.traces.loader import (
    load_arrivals_csv,
    load_rate_profile_csv,
    load_trace,
    save_trace,
)
from repro.workflow.job import Job
from repro.workloads import get_application


class TestTraceLoader:
    def test_npz_roundtrip(self, tmp_path):
        trace = poisson_trace(20.0, 30.0, seed=1)
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert np.array_equal(loaded.arrivals_ms, trace.arrivals_ms)
        assert loaded.profile is not None
        assert np.array_equal(
            loaded.profile.rates_rps, trace.profile.rates_rps
        )

    def test_npz_roundtrip_without_profile(self, tmp_path):
        trace = ArrivalTrace(np.array([1.0, 2.0, 3.0]), name="bare")
        path = tmp_path / "bare.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.profile is None
        assert len(loaded) == 3

    def test_arrivals_csv(self, tmp_path):
        path = tmp_path / "arrivals.csv"
        path.write_text("timestamp_ms\n100.0\n200.5\n# comment\n\n300\n")
        trace = load_arrivals_csv(path)
        assert list(trace.arrivals_ms) == [100.0, 200.5, 300.0]
        assert trace.name == "arrivals"

    def test_arrivals_csv_bad_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("100.0\nnot-a-number\n")
        with pytest.raises(ValueError, match="not a timestamp"):
            load_arrivals_csv(path)

    def test_rate_profile_csv(self, tmp_path):
        path = tmp_path / "profile.csv"
        path.write_text("time_ms,rate_rps\n0,50\n10000,100\n")
        profile = load_rate_profile_csv(path)
        assert profile.rate_at(0.0) == 50.0
        assert profile.rate_at(15_000.0) == 100.0
        # Loaded profiles drive arrival sampling like native ones.
        trace = trace_from_profile(profile, 20_000.0, seed=0, name="csv")
        assert len(trace) > 0

    def test_rate_profile_csv_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("time_ms,rate_rps\n")
        with pytest.raises(ValueError, match="no rate rows"):
            load_rate_profile_csv(path)


def _job(arrival, latency, app="ipa"):
    job = Job(app=get_application(app), arrival_ms=arrival)
    job.completion_ms = arrival + latency
    return job


class TestTimeline:
    def test_rolling_violation_rate(self):
        jobs = [
            _job(0.0, 500.0),        # window 0, ok
            _job(100.0, 2000.0),     # window 0 (ends 2100) -> window 0
            _job(70_000.0, 1500.0),  # window 1, violated
        ]
        starts, rates = rolling_violation_rate(jobs, window_ms=60_000.0)
        assert len(starts) == 2
        assert rates[0] == pytest.approx(0.5)
        assert rates[1] == pytest.approx(1.0)

    def test_rolling_violation_empty(self):
        starts, rates = rolling_violation_rate([])
        assert starts.size == 0

    def test_rolling_latency_percentile(self):
        jobs = [_job(0.0, lat) for lat in (100.0, 200.0, 300.0)]
        starts, p50 = rolling_latency_percentile(jobs, q=50.0,
                                                 window_ms=60_000.0)
        assert p50[0] == pytest.approx(200.0)

    def test_rolling_latency_invalid_q(self):
        with pytest.raises(ValueError):
            rolling_latency_percentile([], q=150.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            rolling_violation_rate([], window_ms=0.0)

    def test_spawn_rate_series_diffs_cumulative(self):
        from repro.metrics.collector import RunResult
        result = RunResult(
            policy="x", mix="m", trace="t", duration_ms=30_000.0,
            n_jobs=0, n_completed=0, n_incomplete=0,
            latencies_ms=np.array([]), violations=0,
            exec_ms=np.array([]), cold_wait_ms=np.array([]),
            batch_wait_ms=np.array([]), queue_ms=np.array([]),
            sample_times_ms=np.array([10_000.0, 20_000.0]),
            container_samples={"A": np.array([2, 4])},
            total_spawns=4, spawns_per_pool={"A": 4},
            spawn_times_ms={"A": [500.0, 11_000.0, 12_000.0, 25_000.0]},
            rpc_per_pool={}, failed_spawns=0,
            energy_joules=0.0, mean_power_w=0.0, mean_active_nodes=0.0,
        )
        series = spawn_rate_series(result, 10_000.0)
        assert list(series) == [1, 2, 1]
        times, counts = containers_over_time(result)
        assert list(counts) == [2, 4]

    def test_timeline_summary_compare(self):
        from repro.metrics.collector import RunResult

        def fake_result(peak):
            return RunResult(
                policy="x", mix="m", trace="t", duration_ms=10_000.0,
                n_jobs=0, n_completed=0, n_incomplete=0,
                latencies_ms=np.array([]), violations=0,
                exec_ms=np.array([]), cold_wait_ms=np.array([]),
                batch_wait_ms=np.array([]), queue_ms=np.array([]),
                sample_times_ms=np.array([10_000.0]),
                container_samples={"A": np.array([peak])},
                total_spawns=0, spawns_per_pool={}, spawn_times_ms={},
                rpc_per_pool={}, failed_spawns=0,
                energy_joules=0.0, mean_power_w=0.0, mean_active_nodes=0.0,
            )

        summary = TimelineSummary.compare(
            fake_result(10), [_job(0.0, 2000.0)],
            fake_result(3), [_job(0.0, 100.0)],
        )
        assert summary.peak_containers_a == 10
        assert summary.peak_containers_b == 3
        assert summary.worst_window_violation_a == 1.0
        assert summary.worst_window_violation_b == 0.0
