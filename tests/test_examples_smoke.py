"""Smoke-run the cheap example scripts end to end.

The heavyweight examples (full policy comparisons, trace replays) are
exercised through the experiments tests; here the fast ones run as real
subproc入口 — import the module and call main() — so a broken example
fails CI rather than a reader's first session.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExampleSmoke:
    def test_slack_explorer_runs(self, capsys):
        module = _load("slack_explorer")
        module.show_plans()
        module.slo_sensitivity()
        out = capsys.readouterr().out
        assert "face-security" in out
        assert "SLO sensitivity" in out

    def test_live_serving_runs(self, capsys):
        module = _load("live_serving")
        # Shrink the demo so the smoke test stays fast: 10 model
        # seconds at 50x compression is ~0.2 wall seconds of serving.
        module.DURATION_S = 10.0
        module.TIME_SCALE = 0.02
        module.main()
        out = capsys.readouterr().out
        assert "sim" in out and "live" in out
        assert "drained=yes" in out

    def test_custom_chains_helpers(self, capsys):
        module = _load("custom_chains")
        # main() runs two simulations; keep the smoke test at the
        # chain-construction level plus one tiny run.
        from repro.workloads.generator import generate_chain
        app = generate_chain("smoke", 2, seed=9)
        assert app.slack_ms > 0

    def test_fault_tolerance_crash_path(self):
        module = _load("fault_tolerance")
        result, crashes = module.run_with_crashes(0.05, seed=1)
        assert result.n_completed == result.n_jobs
        assert crashes >= 0

    def test_fault_tolerance_node_failure_path(self):
        module = _load("fault_tolerance")
        result, destroyed = module.run_with_node_failure(seed=1)
        assert result.n_completed == result.n_jobs
        assert destroyed >= 0
