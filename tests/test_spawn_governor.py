"""Scaling guardrails: the SpawnGovernor between scalers and actuator."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.policies import make_policy_config
from repro.core.scaling import SpawnGovernor
from repro.obs.registry import MetricsRegistry


class FakePool:
    """Duck-typed pool: places up to ``capacity`` containers, ever."""

    def __init__(self, capacity=10**9):
        self.capacity = capacity
        self.spawned = 0
        self.dispatches = 0

    def spawn(self, n):
        got = min(n, self.capacity - self.spawned)
        self.spawned += got
        return got

    def dispatch(self):
        self.dispatches += 1


class TestSurgeClamp:
    def test_spawn_within_budget_passes_through(self):
        gov = SpawnGovernor(max_surge=8)
        pool = FakePool()
        assert gov.spawn(pool, 5, now_ms=0.0) == 5
        assert gov.surge_clamped == 0

    def test_spawn_beyond_budget_is_clamped(self):
        gov = SpawnGovernor(max_surge=8)
        pool = FakePool()
        assert gov.spawn(pool, 20, now_ms=0.0) == 8
        assert gov.surge_clamped == 12

    def test_budget_is_shared_across_pools_within_a_tick(self):
        gov = SpawnGovernor(max_surge=8)
        a, b = FakePool(), FakePool()
        assert gov.spawn(a, 6, now_ms=0.0) == 6
        assert gov.spawn(b, 6, now_ms=0.0) == 2
        assert gov.surge_clamped == 4

    def test_begin_tick_resets_the_budget(self):
        gov = SpawnGovernor(max_surge=8)
        pool = FakePool()
        gov.spawn(pool, 8, now_ms=0.0)
        assert gov.spawn(pool, 4, now_ms=0.0) == 0
        gov.begin_tick(10_000.0)
        assert gov.spawn(pool, 4, now_ms=10_000.0) == 4

    @given(st.lists(st.integers(min_value=0, max_value=50),
                    min_size=1, max_size=20),
           st.integers(min_value=1, max_value=30))
    @settings(max_examples=100, deadline=None)
    def test_tick_spawn_total_never_exceeds_max_surge(self, requests, surge):
        """The clamp invariant: whatever the scalers ask for within one
        tick, placed containers never exceed the surge ceiling."""
        gov = SpawnGovernor(max_surge=surge)
        pool = FakePool()
        spawned = sum(gov.spawn(pool, n, now_ms=0.0) for n in requests)
        assert spawned <= surge
        assert pool.spawned == spawned
        # Conservation: every requested container was placed or counted.
        assert spawned + gov.surge_clamped == sum(requests)


class TestSpawnRetries:
    def test_shortfall_becomes_debt_and_is_retried(self):
        gov = SpawnGovernor(spawn_retry_attempts=2,
                            spawn_retry_backoff_ms=1_000.0, seed=1)
        pool = FakePool(capacity=3)
        assert gov.spawn(pool, 5, now_ms=0.0) == 3
        assert gov.pending_debt == 2
        pool.capacity = 10  # capacity freed before the retry fires
        # Jittered exponential backoff: due within [0.5, 1.5) * base.
        assert gov.begin_tick(2_000.0) == 2
        assert gov.pending_debt == 0
        assert gov.spawn_retries == 2
        assert pool.spawned == 5

    def test_debt_not_due_yet_stays_queued(self):
        gov = SpawnGovernor(spawn_retry_attempts=2,
                            spawn_retry_backoff_ms=60_000.0, seed=1)
        pool = FakePool(capacity=0)
        gov.spawn(pool, 4, now_ms=0.0)
        assert gov.begin_tick(1_000.0) == 0
        assert gov.pending_debt == 4

    def test_exhausted_retries_are_counted_not_silent(self):
        gov = SpawnGovernor(spawn_retry_attempts=1,
                            spawn_retry_backoff_ms=100.0, seed=1)
        pool = FakePool(capacity=0)
        gov.spawn(pool, 3, now_ms=0.0)  # attempt 0 fails -> debt
        gov.begin_tick(10_000.0)        # retry fails -> exhausted
        assert gov.pending_debt == 0
        assert gov.spawn_retries_exhausted == 3

    def test_without_retries_shortfall_is_shed_immediately(self):
        gov = SpawnGovernor(max_surge=50)
        pool = FakePool(capacity=1)
        assert gov.spawn(pool, 4, now_ms=0.0) == 1
        assert gov.pending_debt == 0
        assert gov.spawn_retries_exhausted == 3


class TestScaleDownCooldown:
    def test_reap_blocked_after_recent_spawn(self):
        gov = SpawnGovernor(scale_down_cooldown_ms=30_000.0)
        pool = FakePool()
        gov.spawn(pool, 2, now_ms=100_000.0)
        assert not gov.allow_reap(110_000.0)
        assert gov.allow_reap(140_000.0)

    def test_no_cooldown_always_allows_reap(self):
        gov = SpawnGovernor(max_surge=4)
        pool = FakePool()
        gov.spawn(pool, 2, now_ms=0.0)
        assert gov.allow_reap(0.0)

    def test_deferred_reaps_are_counted(self):
        reg = MetricsRegistry()
        gov = SpawnGovernor(scale_down_cooldown_ms=30_000.0, registry=reg)
        gov.spawn(FakePool(), 1, now_ms=0.0)
        gov.allow_reap(1_000.0)
        assert reg.value("scaling_reaps_deferred_total") == 1


class TestFromConfig:
    def test_defaults_yield_no_governor(self):
        config = make_policy_config("fifer")
        assert SpawnGovernor.from_config(config) is None

    @pytest.mark.parametrize("overrides", [
        dict(max_surge=8),
        dict(scale_down_cooldown_ms=10_000.0),
        dict(spawn_retry_attempts=2),
    ])
    def test_any_enabled_knob_yields_a_governor(self, overrides):
        config = make_policy_config("fifer", **overrides)
        gov = SpawnGovernor.from_config(config, seed=3)
        assert gov is not None

    def test_governor_at_defaults_draws_no_randomness(self):
        gov = SpawnGovernor(max_surge=8)
        gov.spawn(FakePool(), 4, now_ms=0.0)
        assert gov._rng is None  # lazy: no retry scheduled, no RNG

    @pytest.mark.parametrize("kwargs", [
        dict(max_surge=-1),
        dict(scale_down_cooldown_ms=-1.0),
        dict(spawn_retry_attempts=-1),
        dict(spawn_retry_backoff_ms=0.0),
    ])
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SpawnGovernor(**kwargs)


class TestConfigValidation:
    @pytest.mark.parametrize("overrides", [
        dict(max_surge=-1),
        dict(scale_down_cooldown_ms=-5.0),
        dict(spawn_retry_attempts=-2),
        dict(spawn_retry_backoff_ms=-1.0),
        dict(mape_threshold=0.0),
        dict(mape_threshold=-0.5),
        dict(fallback_hysteresis=0),
        dict(mape_window=0),
    ])
    def test_guard_knobs_validated_in_rmconfig(self, overrides):
        with pytest.raises(ValueError):
            make_policy_config("fifer", **overrides)

    def test_mape_threshold_none_means_unguarded(self):
        config = make_policy_config("fifer")
        assert config.mape_threshold is None
