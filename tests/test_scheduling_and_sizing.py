"""Tests for task scheduling queues, Little's-law sizing and policies."""

import pytest

from repro.cluster.cluster import NodePlacementPolicy
from repro.core.policies import POLICY_NAMES, make_policy_config
from repro.core.scheduling import (
    FIFOQueue,
    LSFQueue,
    SchedulingPolicy,
    make_queue,
)
from repro.core.sizing import containers_for_rate
from repro.core.slack import SlackDivision
from repro.workflow.job import Job, Task
from repro.workloads import get_application


def _task(app_name: str, arrival_ms: float, stage: int = 0) -> Task:
    job = Job(app=get_application(app_name), arrival_ms=arrival_ms)
    return Task(job=job, stage_index=stage, enqueue_ms=arrival_ms)


class TestFIFOQueue:
    def test_fifo_order(self):
        q = FIFOQueue()
        t1 = _task("ipa", 0.0)
        t2 = _task("ipa", 10.0)
        q.push(t1)
        q.push(t2)
        assert q.pop() is t1
        assert q.pop() is t2

    def test_empty_pop_and_peek(self):
        q = FIFOQueue()
        assert q.pop() is None
        assert q.peek() is None
        assert not q

    def test_peek_does_not_remove(self):
        q = FIFOQueue()
        t = _task("ipa", 0.0)
        q.push(t)
        assert q.peek() is t
        assert len(q) == 1


class TestLSFQueue:
    def test_least_slack_first_across_apps(self):
        q = LSFQueue()
        # Same arrival: detect-fatigue has far less slack than face-security.
        loose = _task("face-security", 0.0)
        tight = _task("detect-fatigue", 0.0)
        q.push(loose)
        q.push(tight)
        assert q.pop() is tight
        assert q.pop() is loose

    def test_earlier_arrival_has_less_slack(self):
        q = LSFQueue()
        early = _task("ipa", 0.0)
        late = _task("ipa", 500.0)
        q.push(late)
        q.push(early)
        assert q.pop() is early

    def test_later_stage_has_more_available_slack(self):
        # Remaining work shrinks with stage index, so for the same job a
        # later-stage task has a larger slack key.
        job = Job(app=get_application("ipa"), arrival_ms=0.0)
        t0 = Task(job=job, stage_index=0, enqueue_ms=0.0)
        t2 = Task(job=job, stage_index=2, enqueue_ms=0.0)
        assert t0.slack_key < t2.slack_key

    def test_slack_key_time_invariance(self):
        t = _task("img", 100.0)
        assert t.available_slack_ms(200.0) == t.slack_key - 200.0
        assert (
            t.available_slack_ms(300.0) - t.available_slack_ms(200.0)
        ) == pytest.approx(-100.0)

    def test_fifo_tiebreak_prevents_starvation(self):
        q = LSFQueue()
        first = _task("ipa", 0.0)
        second = _task("ipa", 0.0)
        q.push(first)
        q.push(second)
        assert q.pop() is first

    def test_len(self):
        q = LSFQueue()
        q.push(_task("ipa", 0.0))
        assert len(q) == 1
        q.pop()
        assert len(q) == 0


class TestMakeQueue:
    def test_factory(self):
        assert isinstance(make_queue(SchedulingPolicy.FIFO), FIFOQueue)
        assert isinstance(make_queue(SchedulingPolicy.LSF), LSFQueue)


class TestContainersForRate:
    def test_littles_law(self):
        # 100 req/s x 100 ms = 10 erlangs; at util 1.0 -> 10 containers.
        assert containers_for_rate(100.0, 100.0, utilization_target=1.0) == 10

    def test_headroom(self):
        assert containers_for_rate(100.0, 100.0, utilization_target=0.5) == 20

    def test_zero_rate(self):
        assert containers_for_rate(0.0, 100.0) == 0
        assert containers_for_rate(0.0, 100.0, minimum=1) == 1

    def test_ceil(self):
        assert containers_for_rate(11.0, 100.0, utilization_target=1.0) == 2

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            containers_for_rate(-1.0, 100.0)
        with pytest.raises(ValueError):
            containers_for_rate(1.0, 0.0)
        with pytest.raises(ValueError):
            containers_for_rate(1.0, 1.0, utilization_target=0.0)


class TestPolicyConfigs:
    def test_all_policies_constructible(self):
        for name in POLICY_NAMES:
            config = make_policy_config(name)
            assert config.name == name

    def test_paper_feature_matrix(self):
        bline = make_policy_config("bline")
        assert not bline.batching and bline.spawn_on_demand
        assert bline.scheduling == SchedulingPolicy.FIFO
        assert bline.placement == NodePlacementPolicy.SPREAD

        sbatch = make_policy_config("sbatch")
        assert sbatch.batching and sbatch.static_pool
        assert sbatch.slack_division == SlackDivision.EQUAL

        rscale = make_policy_config("rscale")
        assert rscale.batching and rscale.reactive
        assert rscale.proactive_predictor is None
        assert rscale.scheduling == SchedulingPolicy.LSF

        bpred = make_policy_config("bpred")
        assert not bpred.batching and bpred.proactive_predictor == "ewma"

        fifer = make_policy_config("fifer")
        assert fifer.batching and fifer.reactive
        assert fifer.proactive_predictor == "lstm"
        assert fifer.placement == NodePlacementPolicy.PACK

    def test_overrides_for_ablations(self):
        ablated = make_policy_config(
            "fifer", scheduling=SchedulingPolicy.FIFO,
            slack_division=SlackDivision.EQUAL,
        )
        assert ablated.scheduling == SchedulingPolicy.FIFO
        assert ablated.slack_division == SlackDivision.EQUAL

    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            make_policy_config("magic")

    def test_static_pool_cannot_scale(self):
        with pytest.raises(ValueError):
            make_policy_config("sbatch", reactive=True)

    def test_invalid_utilization(self):
        with pytest.raises(ValueError):
            make_policy_config("fifer", utilization_target=1.5)
