"""Tests for the workload substrate (Tables 3, 4, 5 and Figure 2)."""

import numpy as np
import pytest

from repro.workloads import (
    APPLICATIONS,
    LAMBDA_MODELS,
    MICROSERVICES,
    WORKLOAD_MIXES,
    DEFAULT_SLO_MS,
    ExecutionTimeModel,
    get_application,
    get_microservice,
    get_mix,
    measure_cold_start,
    measure_warm_start,
)
from repro.workloads.applications import TABLE4_SLACK_MS
from repro.workloads.exectime import profile_all
from repro.workloads.lambda_model import cold_start_overhead_ms
from repro.workloads.microservices import Microservice


class TestMicroservices:
    def test_table3_exec_times(self):
        expected = {
            "IMC": 43.5, "AP": 30.3, "HS": 151.2, "FACER": 5.5,
            "FACED": 6.1, "ASR": 46.1, "POS": 0.100, "NER": 0.09, "QA": 56.1,
        }
        for name, exec_ms in expected.items():
            assert MICROSERVICES[name].mean_exec_ms == pytest.approx(exec_ms)

    def test_nlp_is_pos_plus_ner(self):
        nlp = MICROSERVICES["NLP"]
        assert nlp.mean_exec_ms == pytest.approx(0.19)

    def test_lookup_case_insensitive(self):
        assert get_microservice("asr").name == "ASR"

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            get_microservice("nope")

    def test_exec_time_deterministic_without_rng(self):
        svc = MICROSERVICES["ASR"]
        assert svc.exec_time_ms() == svc.mean_exec_ms

    def test_exec_time_scales_linearly_with_input(self):
        svc = MICROSERVICES["IMC"]
        assert svc.exec_time_ms(input_scale=2.0) == pytest.approx(87.0)

    def test_exec_time_jitter_bounded(self):
        # Figure 3b: std-dev within 20 ms over repeated runs.
        rng = np.random.default_rng(0)
        svc = MICROSERVICES["HS"]
        samples = [svc.exec_time_ms(rng) for _ in range(100)]
        assert np.std(samples) < 20.0
        assert all(s > 0 for s in samples)

    def test_exec_time_never_near_zero(self):
        rng = np.random.default_rng(0)
        svc = Microservice("X", "x", "m", "d", mean_exec_ms=1.0, exec_std_ms=5.0)
        assert min(svc.exec_time_ms(rng) for _ in range(200)) >= 0.1

    def test_invalid_input_scale(self):
        with pytest.raises(ValueError):
            MICROSERVICES["QA"].exec_time_ms(input_scale=0.0)

    def test_invalid_exec_time_rejected(self):
        with pytest.raises(ValueError):
            Microservice("bad", "b", "m", "d", mean_exec_ms=0.0)

    def test_container_resources_match_paper(self):
        for svc in MICROSERVICES.values():
            assert svc.cpu_cores == 0.5
            assert svc.memory_mb <= 1024


class TestApplications:
    def test_table4_chains(self):
        assert get_application("face-security").stage_names == ("FACED", "FACER")
        assert get_application("img").stage_names == ("IMC", "NLP", "QA")
        assert get_application("ipa").stage_names == ("ASR", "NLP", "QA")
        assert get_application("detect-fatigue").stage_names == (
            "HS", "AP", "FACED", "FACER",
        )

    def test_slack_matches_table4_exactly(self):
        for name, slack in TABLE4_SLACK_MS.items():
            assert APPLICATIONS[name].slack_ms == pytest.approx(slack)

    def test_slo_is_1000ms(self):
        for app in APPLICATIONS.values():
            assert app.slo_ms == DEFAULT_SLO_MS == 1000.0

    def test_slack_ordering_matches_paper(self):
        # Table 4 is ordered by decreasing slack.
        slacks = [
            APPLICATIONS[n].slack_ms
            for n in ["face-security", "img", "ipa", "detect-fatigue"]
        ]
        assert slacks == sorted(slacks, reverse=True)

    def test_transition_overhead_positive(self):
        for app in APPLICATIONS.values():
            assert app.transition_overhead_ms > 0

    def test_total_accounting(self):
        for app in APPLICATIONS.values():
            total = app.total_exec_ms + app.total_overhead_ms + app.slack_ms
            assert total == pytest.approx(app.slo_ms)

    def test_with_slo_changes_slack(self):
        app = get_application("ipa").with_slo(2000.0)
        assert app.slack_ms == pytest.approx(
            get_application("ipa").slack_ms + 1000.0
        )

    def test_with_slo_too_tight_raises(self):
        with pytest.raises(ValueError):
            get_application("detect-fatigue").with_slo(300.0)

    def test_unknown_application(self):
        with pytest.raises(KeyError):
            get_application("unknown")

    def test_detect_fatigue_stage1_dominates(self):
        # Figure 3a: HS dominates Detect-Fatigue's execution time (~81%).
        app = get_application("detect-fatigue")
        share = app.stage_exec_ms(0) / app.total_exec_ms
        assert share > 0.7


class TestMixes:
    def test_table5_composition(self):
        assert {a.name for a in get_mix("heavy").applications} == {
            "ipa", "detect-fatigue",
        }
        assert {a.name for a in get_mix("medium").applications} == {"ipa", "img"}
        assert {a.name for a in get_mix("light").applications} == {
            "img", "face-security",
        }

    def test_slack_ordering_heavy_to_light(self):
        # "Based on the increasing order of total available slack."
        heavy = get_mix("heavy").avg_slack_ms
        medium = get_mix("medium").avg_slack_ms
        light = get_mix("light").avg_slack_ms
        assert heavy < medium < light

    def test_weights_normalised(self):
        for mix in WORKLOAD_MIXES.values():
            assert sum(mix.weights) == pytest.approx(1.0)

    def test_sample_application_distribution(self):
        mix = get_mix("heavy")
        rng = np.random.default_rng(0)
        names = [mix.sample_application(rng).name for _ in range(2000)]
        share = names.count("ipa") / len(names)
        assert 0.45 < share < 0.55

    def test_function_names_unique_and_shared(self):
        medium = get_mix("medium")
        names = medium.function_names()
        assert len(names) == len(set(names))
        # IPA and IMG share NLP and QA.
        assert "NLP" in names and "QA" in names

    def test_unknown_mix(self):
        with pytest.raises(KeyError):
            get_mix("extreme")


class TestExecutionTimeModel:
    def test_fit_recovers_line(self):
        model = ExecutionTimeModel().fit([1, 2, 3, 4], [10.0, 20.0, 30.0, 40.0])
        assert model.slope == pytest.approx(10.0)
        assert model.intercept == pytest.approx(0.0, abs=1e-9)
        assert model.r_squared == pytest.approx(1.0)

    def test_profile_matches_linear_scaling(self):
        svc = MICROSERVICES["IMC"]
        model = ExecutionTimeModel().profile(svc, seed=0)
        # exec = mean * scale, so slope ~ mean and intercept ~ 0.
        assert model.predict(1.0) == pytest.approx(svc.mean_exec_ms, rel=0.15)
        assert model.predict(2.0) == pytest.approx(2 * svc.mean_exec_ms, rel=0.15)
        assert model.r_squared > 0.95

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            ExecutionTimeModel().predict(1.0)

    def test_degenerate_constant_input(self):
        model = ExecutionTimeModel().fit([2, 2, 2], [5.0, 6.0, 7.0])
        assert model.slope == 0.0
        assert model.predict(99.0) == pytest.approx(6.0)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            ExecutionTimeModel().fit([1], [2.0])

    def test_prediction_clamped_non_negative(self):
        model = ExecutionTimeModel().fit([1, 2], [2.0, 1.0])
        assert model.predict(100.0) == 0.0

    def test_profile_all_covers_everything(self):
        models = profile_all(MICROSERVICES, seed=1)
        assert set(models) == set(MICROSERVICES)
        assert all(m.fitted for m in models.values())


class TestLambdaModel:
    def test_seven_models(self):
        assert len(LAMBDA_MODELS) == 7
        assert "Squeezenet" in LAMBDA_MODELS and "Resnet-200" in LAMBDA_MODELS

    def test_cold_start_overhead_in_paper_range(self):
        # Figure 2: cold starts contribute ~2000-7500ms over warm.
        overheads = [cold_start_overhead_ms(m) for m in LAMBDA_MODELS.values()]
        assert min(overheads) > 1000.0
        assert max(overheads) < 11_000.0

    def test_overhead_grows_with_model_size(self):
        small = cold_start_overhead_ms(LAMBDA_MODELS["Squeezenet"])
        large = cold_start_overhead_ms(LAMBDA_MODELS["Resnet-200"])
        assert large > 3 * small

    def test_warm_under_1500ms_for_small_models(self):
        # Figure 2b: warm totals within ~1500 ms except the largest.
        for name in ["Squeezenet", "Resnet-18", "Resnet-50"]:
            warm = measure_warm_start(LAMBDA_MODELS[name])
            assert warm["rtt"] < 1500.0

    def test_cold_exceeds_warm_always(self):
        rng = np.random.default_rng(0)
        for model in LAMBDA_MODELS.values():
            cold = measure_cold_start(model, rng)
            warm = measure_warm_start(model, rng)
            assert cold["rtt"] > warm["rtt"]
            assert cold["exec_time"] > 0 and warm["exec_time"] > 0

    def test_rtt_includes_exec(self):
        for model in LAMBDA_MODELS.values():
            cold = measure_cold_start(model)
            assert cold["rtt"] > cold["exec_time"]
