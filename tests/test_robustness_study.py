"""The PR's acceptance criteria: guarded Fifer under injected failures.

Two claims, both asserted against real runs:

1. **Robustness inequality** — with the predictor diverging mid-trace,
   guarded Fifer's SLO-violation rate is at most pure RScale's plus two
   points (falling back costs nearly nothing) and strictly below
   unguarded Fifer's (riding the diverged forecasts is worse).
2. **Sim-vs-live parity** — a node-kill-plus-divergence scenario run
   through the simulator and the live serving runtime lands within
   0.15 absolute SLO-violation rate, and the guard/fault events appear
   in *both* registries under the same counter names.
"""

import pytest

from repro.cluster.faults import NodeFaultSchedule
from repro.experiments.robustness import run_robustness_study, study_specs
from repro.prediction.classical import EWMAPredictor
from repro.prediction.guarded import DivergentPredictor
from repro.runtime.system import ClusterSpec, run_policy
from repro.serve import ServeOptions, serve_trace
from repro.traces import poisson_trace
from repro.workloads import get_mix


class TestRobustnessStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_robustness_study(quick=True, workers=3, use_cache=False)

    def test_structure(self, study):
        assert set(study["scenarios"]) == {"divergence", "node-loss"}
        for arms in study["scenarios"].values():
            assert set(arms) == {"unguarded", "guarded", "rscale"}

    def test_guarded_within_two_points_of_rscale(self, study):
        div = study["scenarios"]["divergence"]
        assert div["guarded"]["slo_violation_rate"] \
            <= div["rscale"]["slo_violation_rate"] + 0.02

    def test_guarded_strictly_beats_unguarded(self, study):
        div = study["scenarios"]["divergence"]
        assert div["guarded"]["slo_violation_rate"] \
            < div["unguarded"]["slo_violation_rate"]

    def test_fallback_engaged_only_in_guarded_arm(self, study):
        div = study["scenarios"]["divergence"]
        assert div["guarded"]["guards"]["predictor_fallbacks"] > 0
        assert div["unguarded"]["guards"]["predictor_fallbacks"] == 0
        assert div["rscale"]["guards"]["predictor_fallbacks"] == 0

    def test_node_loss_hits_every_arm(self, study):
        loss = study["scenarios"]["node-loss"]
        for arm in ("unguarded", "guarded", "rscale"):
            assert loss[arm]["guards"]["nodes_killed"] == 1
            assert loss[arm]["guards"]["nodes_recovered"] == 1

    def test_acceptance_verdicts_all_pass(self, study):
        assert all(study["acceptance"].values()), study["acceptance"]

    def test_specs_are_cacheable_and_distinct(self):
        from repro.experiments.runner import config_hash

        matrix = study_specs(quick=True)
        hashes = [
            config_hash(spec)
            for arms in matrix.values() for spec in arms.values()
        ]
        assert len(set(hashes)) == len(hashes)


# ---------------------------------------------------------------------------
# sim-vs-live parity for the node-kill + predictor-fallback scenario


MIX = "medium"
RATE_RPS = 15.0
DURATION_S = 60.0
SEED = 0
TIME_SCALE = 0.05
PARITY_SLO_TOLERANCE = 0.15

SCENARIO = dict(
    proactive_predictor="ewma",
    mape_threshold=0.5,
    fallback_hysteresis=2,
    max_surge=8,
    spawn_retry_attempts=2,
    idle_timeout_ms=60_000.0,
)
FAULT_SPEC = "kill@20=0;recover@40=0"


def _divergent():
    # Separate but identical chaos predictors per world: each wraps a
    # fresh EWMA, diverging 30x from the second monitor tick on.
    return DivergentPredictor(EWMAPredictor(), diverge_after=2, factor=30.0)


@pytest.fixture(scope="module")
def guarded_pair():
    mix = get_mix(MIX)
    trace = poisson_trace(RATE_RPS, DURATION_S, seed=SEED)
    spec = ClusterSpec(n_nodes=3)
    sim = run_policy(
        "fifer", mix, trace, seed=SEED, cluster_spec=spec,
        predictor=_divergent(),
        node_fault_schedule=NodeFaultSchedule.parse(FAULT_SPEC),
        **SCENARIO,
    )
    live = serve_trace(
        "fifer", mix, trace, seed=SEED, cluster_spec=spec,
        predictor=_divergent(),
        options=ServeOptions(
            time_scale=TIME_SCALE,
            node_fault_schedule=NodeFaultSchedule.parse(FAULT_SPEC),
        ),
        **SCENARIO,
    )
    return sim, live


class TestGuardedParity:
    def test_same_offered_workload(self, guarded_pair):
        sim, live = guarded_pair
        assert live.n_jobs == sim.n_jobs

    def test_slo_within_tolerance(self, guarded_pair):
        sim, live = guarded_pair
        assert abs(live.slo_violation_rate - sim.slo_violation_rate) \
            <= PARITY_SLO_TOLERANCE

    def test_fallback_fired_in_both_worlds(self, guarded_pair):
        sim, live = guarded_pair
        assert sim.predictor_fallbacks > 0
        assert live.predictor_fallbacks > 0
        assert sim.fallback_ticks > 0
        assert live.fallback_ticks > 0

    def test_node_faults_fired_in_both_worlds(self, guarded_pair):
        sim, live = guarded_pair
        assert sim.nodes_killed == 1
        assert live.nodes_killed == 1
        assert sim.nodes_recovered == 1
        assert live.nodes_recovered == 1

    def test_guardrail_counters_present_in_both_summaries(self, guarded_pair):
        sim, live = guarded_pair
        for key in ("predictor_fallbacks", "fallback_ticks", "surge_clamped",
                    "spawn_retries", "spawn_retries_exhausted",
                    "nodes_killed", "nodes_recovered", "stage_sheds"):
            assert key in sim.summary()
            assert key in live.summary()
