"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scheduling import FIFOQueue, LSFQueue
from repro.core.sizing import containers_for_rate
from repro.core.slack import (
    SlackDivision,
    batch_size_for,
    build_stage_plan,
    distribute_slack,
)
from repro.metrics.stats import percentile, summarize_latencies
from repro.prediction.classical import EWMAPredictor, MovingWindowAveragePredictor
from repro.prediction.nn import SeriesScaler, clip_gradients, sliding_windows
from repro.sim.engine import Simulator
from repro.traces.base import ArrivalTrace
from repro.workflow.job import Job, Task
from repro.workloads import APPLICATIONS, get_application

app_names = st.sampled_from(sorted(APPLICATIONS))
finite_floats = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestSimulatorProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e5,
                              allow_nan=False), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
                    min_size=1, max_size=40),
           st.floats(min_value=0.0, max_value=1e4, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_run_until_never_executes_beyond_horizon(self, delays, horizon):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda: fired.append(sim.now))
        sim.run(until=horizon)
        assert all(t <= horizon for t in fired)


class TestSlackProperties:
    @given(app_names, st.sampled_from(list(SlackDivision)))
    @settings(max_examples=30, deadline=None)
    def test_distribution_conserves_total_slack(self, name, division):
        app = get_application(name)
        slacks = distribute_slack(app, division)
        assert sum(slacks) == pytest.approx(app.slack_ms)
        assert all(s >= 0 for s in slacks)

    @given(st.floats(min_value=-1e6, max_value=1e5, allow_nan=False),
           st.floats(min_value=0.01, max_value=1e4, allow_nan=False),
           st.integers(min_value=1, max_value=256))
    @settings(max_examples=100, deadline=None)
    def test_batch_size_bounds(self, slack, exec_ms, max_batch):
        # Holds for *any* residual slack, including zero and negative
        # (an already-violated SLO): the result is always a usable batch
        # size in [1, max_batch], never 0 and never an exception.
        b = batch_size_for(slack, exec_ms, max_batch)
        assert isinstance(b, int)
        assert 1 <= b <= max_batch
        # A full local queue drains within the slack (unless clamped to 1).
        if b > 1:
            assert b * exec_ms <= slack

    @given(app_names, st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_stage_plan_response_is_slack_plus_exec(self, name, batching):
        app = get_application(name)
        plan = build_stage_plan(app, batching=batching)
        for slack, resp, svc in zip(
            plan.stage_slack_ms, plan.stage_response_ms, app.stages
        ):
            assert resp == pytest.approx(slack + svc.mean_exec_ms)


class TestSchedulingProperties:
    @given(st.lists(st.tuples(app_names,
                              st.floats(min_value=0, max_value=1e5,
                                        allow_nan=False)),
                    min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_lsf_pops_in_slack_key_order(self, jobs):
        q = LSFQueue()
        tasks = []
        for name, arrival in jobs:
            job = Job(app=get_application(name), arrival_ms=arrival)
            task = Task(job=job, stage_index=0, enqueue_ms=arrival)
            tasks.append(task)
            q.push(task)
        keys = []
        while q:
            keys.append(q.pop().slack_key)
        assert keys == sorted(keys)
        assert len(keys) == len(tasks)

    @given(st.lists(st.integers(), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_fifo_preserves_insertion_order(self, markers):
        q = FIFOQueue()
        sentinels = []
        for m in markers:
            job = Job(app=get_application("ipa"), arrival_ms=0.0)
            task = Task(job=job, stage_index=0, enqueue_ms=float(m % 1000))
            sentinels.append(task)
            q.push(task)
        assert [q.pop() for _ in markers] == sentinels


class TestSizingProperties:
    @given(st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
           st.floats(min_value=0.01, max_value=1e4, allow_nan=False),
           st.floats(min_value=0.05, max_value=1.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_capacity_covers_offered_load(self, rate, exec_ms, util):
        n = containers_for_rate(rate, exec_ms, util)
        offered = rate * exec_ms / 1000.0
        if rate > 0:
            assert n >= offered  # capacity at least the offered erlangs
            assert n * util >= offered - 1e-9 or n >= offered

    @given(st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
           st.floats(min_value=0.01, max_value=1e4, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_lower_utilization_never_fewer_containers(self, rate, exec_ms):
        tight = containers_for_rate(rate, exec_ms, 0.9)
        loose = containers_for_rate(rate, exec_ms, 0.5)
        assert loose >= tight


class TestTraceProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_rate_series_conserves_arrival_count(self, times):
        trace = ArrivalTrace(np.array(times))
        span = trace.duration_ms + 1.0
        series = trace.rate_series(1000.0, duration_ms=span)
        counted = np.sum(series) * 1.0  # each bucket is count / 1 s
        assert counted == pytest.approx(len(trace))

    @given(st.lists(finite_floats, min_size=2, max_size=100),
           st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_thinning_never_grows(self, times, fraction):
        trace = ArrivalTrace(np.array(times))
        thin = trace.thinned(fraction, np.random.default_rng(0))
        assert len(thin) <= len(trace)


class TestPredictionProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
                    min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_mwa_within_history_range(self, history):
        pred = MovingWindowAveragePredictor(window=10).predict(history)
        assert min(history[-10:]) - 1e-9 <= pred <= max(history[-10:]) + 1e-9

    @given(st.lists(st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
                    min_size=1, max_size=50),
           st.floats(min_value=0.01, max_value=1.0, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_ewma_within_history_range(self, history, alpha):
        pred = EWMAPredictor(alpha=alpha).predict(history)
        assert min(history) - 1e-9 <= pred <= max(history) + 1e-9

    @given(st.lists(st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
                    min_size=2, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_scaler_roundtrip_identity(self, series):
        arr = np.array(series)
        scaler = SeriesScaler().fit(arr)
        recovered = np.array([scaler.inverse(v) for v in scaler.transform(arr)])
        assert np.allclose(recovered, arr, atol=1e-6)

    @given(st.integers(min_value=1, max_value=10),
           st.integers(min_value=2, max_value=60))
    @settings(max_examples=50, deadline=None)
    def test_sliding_windows_alignment(self, lookback, length):
        series = np.arange(float(length))
        x, y = sliding_windows(series, lookback)
        for i in range(len(y)):
            assert y[i] == series[i + lookback]
            assert x[i, -1] == series[i + lookback - 1]

    @given(st.dictionaries(st.text(min_size=1, max_size=3),
                           st.lists(st.floats(min_value=-100, max_value=100,
                                              allow_nan=False),
                                    min_size=1, max_size=5).map(np.array),
                           min_size=1, max_size=4),
           st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=50, deadline=None)
    def test_clip_gradients_norm_bound(self, grads, max_norm):
        clipped = clip_gradients(grads, max_norm)
        total = np.sqrt(sum(float(np.sum(g**2)) for g in clipped.values()))
        assert total <= max_norm + 1e-6 or total <= np.sqrt(
            sum(float(np.sum(g**2)) for g in grads.values())
        )


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                    min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_percentiles_monotone(self, values):
        p50 = percentile(values, 50)
        p95 = percentile(values, 95)
        p99 = percentile(values, 99)
        assert p50 <= p95 <= p99
        assert min(values) <= p50
        assert p99 <= max(values)

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                    min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_summary_internally_consistent(self, values):
        s = summarize_latencies(values)
        assert s["p50"] <= s["p95"] <= s["p99"] <= s["max"]
        assert min(values) - 1e-9 <= s["mean"] <= max(values) + 1e-9
