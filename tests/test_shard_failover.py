"""Tests for the self-healing sharded plane: heartbeat health
monitoring, epoch-fenced leases, ring remap + journal-driven keyspace
takeover, the sim fault plane, and the live kill-a-shard path."""

import json
import logging
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.faults import ShardFaultEvent, ShardFaultSchedule
from repro.obs.registry import MetricsRegistry
from repro.runtime.system import ClusterSpec
from repro.serve import ServeOptions
from repro.serve.journal import (
    EV_ADMIT,
    EV_COMPLETE,
    EV_HOP,
    JOURNAL_SCHEMA_VERSION,
    RequestJournal,
)
from repro.serve.recovery import build_recovery_plan
from repro.shard.failover import (
    EpochLease,
    OrchestratorSupervisor,
    ShardHealthMonitor,
    assign_takeover,
    heartbeat_basename,
)
from repro.shard.live import (
    merge_registry_snapshots,
    plane_journal_conservation,
    serve_sharded,
    snapshot_registry,
)
from repro.shard.orchestrator import GlobalOrchestrator
from repro.shard.ring import ConsistentHashRing
from repro.shard.sim import run_sharded_policy
from repro.traces import poisson_trace
from repro.traces.base import ArrivalTrace
from repro.workloads import get_mix


# ---------------------------------------------------------------------------
# heartbeat health monitor


def _monitor(**kw):
    kw.setdefault("interval_ms", 1000.0)
    kw.setdefault("miss_threshold", 3)
    kw.setdefault("hysteresis", 2)
    return ShardHealthMonitor([0, 1], **kw)


def test_monitor_declares_after_misses_and_hysteresis():
    mon = _monitor()
    for t in (0.0, 1000.0, 2000.0):
        mon.record_heartbeat(0, t)
        mon.record_heartbeat(1, t)
        assert mon.observe(t) == {"dead": [], "recovered": []}
    # Shard 1 goes silent at t=2000; shard 0 keeps beating.
    declared = None
    for t in np.arange(3000.0, 10000.0, 1000.0):
        mon.record_heartbeat(0, t)
        out = mon.observe(t)
        if out["dead"]:
            declared = (t, out["dead"])
            break
    # First bad eval at gap >= 3 intervals (t=5000), second at t=6000.
    assert declared == (6000.0, [1])
    assert mon.dead == {1}
    assert mon.registry.value("shard_failovers_total") == 1


def test_monitor_single_miss_never_flaps():
    mon = _monitor()
    mon.record_heartbeat(0, 0.0)
    mon.record_heartbeat(1, 0.0)
    # One long GC pause: a single bad evaluation, then beats resume.
    assert mon.observe(3000.0) == {"dead": [], "recovered": []}
    mon.record_heartbeat(0, 3100.0)
    mon.record_heartbeat(1, 3100.0)
    assert mon.observe(4000.0) == {"dead": [], "recovered": []}
    assert mon.dead == set()
    assert mon.registry.value("shard_failovers_total") == 0
    assert mon.registry.value("shard_heartbeat_misses_total") == 2


def test_monitor_recovers_after_beats_resume():
    mon = _monitor(miss_threshold=2, hysteresis=2)
    mon.record_heartbeat(0, 0.0)
    mon.record_heartbeat(1, 0.0)
    for t in (2000.0, 3000.0):
        mon.record_heartbeat(0, t)
        mon.observe(t)
    assert mon.dead == {1}
    # The restarted shard beats again: two good evals re-admit it.
    for t in (4000.0, 5000.0):
        mon.record_heartbeat(0, t)
        mon.record_heartbeat(1, t)
        out = mon.observe(t)
    assert out == {"dead": [], "recovered": [1]}
    assert mon.dead == set()
    assert mon.registry.value("shard_recoveries_total") == 1


def test_monitor_validation():
    with pytest.raises(ValueError):
        ShardHealthMonitor([], interval_ms=1000.0)
    with pytest.raises(ValueError):
        ShardHealthMonitor([0], interval_ms=0.0)
    with pytest.raises(ValueError):
        ShardHealthMonitor([0], interval_ms=1.0, miss_threshold=0)
    with pytest.raises(ValueError):
        ShardHealthMonitor([0], interval_ms=1.0, hysteresis=0)
    mon = _monitor()
    with pytest.raises(KeyError):
        mon.record_heartbeat(7, 0.0)


# ---------------------------------------------------------------------------
# ring remap property: failover remap == with_shard_removed


def _vnode_map(ring):
    return dict(zip(ring._positions.tolist(), ring._owners.tolist()))


@settings(max_examples=40, deadline=None)
@given(
    shards=st.integers(min_value=2, max_value=8),
    victim_index=st.integers(min_value=0, max_value=7),
    vnodes=st.sampled_from([8, 16]),
)
def test_failover_remap_is_with_shard_removed(shards, victim_index,
                                              vnodes):
    victim = victim_index % shards
    ring = ConsistentHashRing(shards, vnodes=vnodes)
    remapped = ring.with_shard_removed(victim)
    # Identical to a ring constructed from the survivor set directly.
    survivors = [s for s in range(shards) if s != victim]
    fresh = ConsistentHashRing(0, vnodes=vnodes, shard_ids=survivors)
    assert np.array_equal(remapped._positions, fresh._positions)
    assert np.array_equal(remapped._owners, fresh._owners)
    # Surviving vnodes never move: the remapped ring's (position,
    # owner) pairs are exactly the original's minus the victim's.
    before = _vnode_map(ring)
    after = _vnode_map(remapped)
    assert after == {
        pos: owner for pos, owner in before.items() if owner != victim
    }


def test_ring_remove_last_shard_raises():
    ring = ConsistentHashRing(1)
    with pytest.raises(ValueError):
        ring.with_shard_removed(0)
    with pytest.raises(ValueError):
        ConsistentHashRing(2).with_shard_removed(5)


# ---------------------------------------------------------------------------
# takeover partition property: any crash point, exactly once


def _journal_records(n_jobs, base_t=0.0):
    """A synthetic WAL: admits interleaved with hops and completions."""
    records = []
    for i in range(n_jobs):
        records.append({
            "v": JOURNAL_SCHEMA_VERSION, "ev": EV_ADMIT, "job": i,
            "t": base_t + 10.0 * i, "app": "img", "scale": 1.0,
        })
        if i % 3 == 0:
            records.append({
                "v": JOURNAL_SCHEMA_VERSION, "ev": EV_HOP, "job": i,
                "t": base_t + 10.0 * i + 5.0, "stage": 1,
            })
        if i % 2 == 0:
            records.append({
                "v": JOURNAL_SCHEMA_VERSION, "ev": EV_COMPLETE,
                "job": i, "t": base_t + 10.0 * i + 50.0,
            })
    return records


@settings(max_examples=40, deadline=None)
@given(
    n_jobs=st.integers(min_value=0, max_value=30),
    crash_at=st.integers(min_value=0, max_value=120),
    shards=st.integers(min_value=2, max_value=5),
    now_ms=st.floats(min_value=0.0, max_value=5000.0),
)
def test_takeover_partition_total_and_disjoint(n_jobs, crash_at,
                                               shards, now_ms):
    records = _journal_records(n_jobs)
    prefix = records[:crash_at]   # the WAL as of an arbitrary crash
    plan = build_recovery_plan(
        prefix, now_ms, lambda name: 1000.0 if name == "img" else None)
    admitted = {r["job"] for r in prefix if r["ev"] == EV_ADMIT}
    requeue_ids = {j.job_id for j in plan.requeue}
    expired_ids = {j.job_id for j in plan.expired}
    deduped_ids = set(plan.deduped)
    # Total and disjoint over every admitted job.
    assert requeue_ids | expired_ids | deduped_ids == admitted
    assert not (requeue_ids & expired_ids)
    assert not (requeue_ids & deduped_ids)
    assert not (expired_ids & deduped_ids)
    # The ring split hands every in-flight job to exactly one survivor.
    ring = ConsistentHashRing(shards).with_shard_removed(0)
    assignment = assign_takeover(plan.requeue, ring)
    assigned = [j.job_id for jobs in assignment.values() for j in jobs]
    assert sorted(assigned) == sorted(requeue_ids)
    assert len(assigned) == len(set(assigned))
    for owner, jobs in assignment.items():
        assert owner in ring.shard_ids
        for job in jobs:
            assert ring.shard_for(job.job_id) == owner


# ---------------------------------------------------------------------------
# epoch lease


def test_lease_acquire_bumps_epoch_and_renews(tmp_path):
    reg = MetricsRegistry()
    lease = EpochLease(str(tmp_path / "o.lease"), registry=reg)
    assert lease.acquire(0.0)
    assert lease.epoch == 1
    assert lease.renew(100.0)
    doc = lease.holder()
    assert doc["epoch"] == 1 and doc["pid"] == os.getpid()
    assert reg.value("orchestrator_lease_epoch") == 1.0
    # A second acquisition (same process) bumps the epoch again.
    assert lease.acquire(200.0)
    assert lease.epoch == 2


def test_lease_refuses_fresh_live_holder(tmp_path):
    path = tmp_path / "o.lease"
    # Held by pid 1 (always alive, never us), renewed just now.
    path.write_text(json.dumps({"epoch": 3, "pid": 1, "t_ms": 1000.0}))
    lease = EpochLease(str(path), ttl_ms=10_000.0)
    assert not lease.acquire(2000.0)
    assert lease.epoch == 0
    # Once the holder goes stale, the takeover may proceed.
    assert lease.acquire(50_000.0)
    assert lease.epoch == 4


def test_lease_steals_from_dead_pid(tmp_path):
    path = tmp_path / "o.lease"
    path.write_text(json.dumps(
        {"epoch": 5, "pid": 999999999, "t_ms": 1000.0}))
    lease = EpochLease(str(path), ttl_ms=10_000.0)
    # Fresh but dead: pid liveness decides, not the timestamp.
    assert lease.acquire(1500.0)
    assert lease.epoch == 6


def test_lease_renewal_is_fenced_after_epoch_moves(tmp_path):
    path = tmp_path / "o.lease"
    reg = MetricsRegistry()
    old = EpochLease(str(path), registry=reg)
    old.acquire(0.0)
    # A contender (the takeover) bumps the on-disk epoch.
    contender = EpochLease(str(path))
    contender.acquire(20_000.0)
    # The zombie's renewal is refused without writing.
    assert not old.renew(21_000.0)
    assert reg.value("orchestrator_fenced_renewals_total") == 1
    assert old.holder()["epoch"] == contender.epoch == 2


# ---------------------------------------------------------------------------
# orchestrator supervisor + poisoned ticks


class _FakeOrchestrator:
    def __init__(self):
        self.ticks = []
        self.restored = 0

    def reconcile(self, now_ms):
        self.ticks.append(now_ms)
        return {"now_ms": now_ms}

    def restore_from_store(self):
        self.restored += 1
        return {}


def test_supervisor_fails_over_to_standby():
    primary, standby = _FakeOrchestrator(), _FakeOrchestrator()
    reg = MetricsRegistry()
    sup = OrchestratorSupervisor(
        primary, standby, fail_primary_at_ms=5000.0, registry=reg)
    sup.reconcile(1000.0)
    assert not sup.failed_over and primary.ticks == [1000.0]
    sup.reconcile(6000.0)
    assert sup.failed_over
    assert standby.ticks == [6000.0] and standby.restored == 1
    assert reg.value("orchestrator_failovers_total") == 1
    # Only one failover, ever.
    sup.reconcile(7000.0)
    assert reg.value("orchestrator_failovers_total") == 1
    assert primary.ticks == [1000.0]


class _PoisonedHandle:
    shard_id = 0

    def load_report(self, now_ms):
        raise RuntimeError("poisoned tick")


def test_poisoned_orchestrator_tick_is_contained():
    reg = MetricsRegistry()
    orch = GlobalOrchestrator([_PoisonedHandle()], registry=reg)
    out = orch.reconcile(1000.0)
    assert out.get("error") is True
    assert reg.value("orchestrator_tick_errors_total") == 1
    # The loop survives: the next tick fails the same way, no raise.
    orch.reconcile(2000.0)
    assert reg.value("orchestrator_tick_errors_total") == 2


# ---------------------------------------------------------------------------
# registry merge degradation (dead shard ships no snapshot)


def test_merge_tolerates_missing_and_partial_snapshots():
    good = MetricsRegistry()
    good.counter("jobs_created_total").inc(10)
    rows = snapshot_registry(good)
    torn = rows + [("bad-row",), ("x", (), "counter", "not-a-number")]
    merged = merge_registry_snapshots([rows, None, torn])
    # Everything readable still merges; the damage is counted.
    assert merged.total("jobs_created_total") == 20
    assert merged.value("shards_missing") == 1
    assert merged.value("registry_rows_skipped_total") == 2


def test_merge_clean_snapshots_emit_no_degradation_metrics():
    reg = MetricsRegistry()
    reg.counter("jobs_created_total").inc(1)
    merged = merge_registry_snapshots([snapshot_registry(reg)])
    names = {name for name, _, _ in merged.collect()}
    assert "shards_missing" not in names
    assert "registry_rows_skipped_total" not in names


# ---------------------------------------------------------------------------
# shard fault schedule


def test_shard_fault_schedule_parse():
    sched = ShardFaultSchedule.parse("kill@60=1;recover@120=1")
    assert [(e.at_ms, e.action, e.shard_ids) for e in sched.events] == [
        (60_000.0, "kill", (1,)),
        (120_000.0, "recover", (1,)),
    ]
    multi = ShardFaultSchedule.parse("kill@5=0,2")
    assert multi.events[0].shard_ids == (0, 2)
    for bad in ("kill@60", "explode@1=0", "kill@x=0", "", "kill@1=",
                "kill@1=0,0"):
        with pytest.raises(ValueError):
            ShardFaultSchedule.parse(bad)
    with pytest.raises(ValueError):
        ShardFaultEvent(at_ms=-1.0, action="kill", shard_ids=(0,))


# ---------------------------------------------------------------------------
# sim plane end-to-end


def _sim_trace(duration_s=40.0, rate=25.0, seed=2):
    rng = np.random.default_rng(seed)
    n = rng.poisson(rate * duration_s)
    t = np.sort(rng.uniform(0.0, duration_s * 1000.0, n))
    return ArrivalTrace(t, name="failover-test")


def test_sim_kill_and_recover_conserves_exactly_once():
    trace = _sim_trace()
    result = run_sharded_policy(
        "rscale", get_mix("medium"), trace, shards=3,
        cluster_spec=ClusterSpec(n_nodes=6), seed=5, engine="fast",
        shard_faults=ShardFaultSchedule.parse("kill@12=1;recover@28=1"),
        heartbeat_interval_ms=200.0,
        heartbeat_miss_threshold=2,
        failover_hysteresis=1,
    )
    orch = result.orchestration
    assert orch["failovers"] >= 1
    assert orch["shard_recoveries"] >= 1
    journal = orch["journal"]
    assert journal["conserved"], journal
    # Plane-wide exactly-once: every created job has one terminal.
    assert result.n_completed + result.n_failed + result.shed_jobs \
        == result.n_jobs == len(trace.arrivals_ms)
    # The takeover actually moved work: something was requeued or
    # expired from the dead shard's journal mirror, and post-declaration
    # arrivals rerouted to the ring survivors.
    moved = result.registry.value(
        "shard_jobs_requeued_on_failover_total"
    ) + result.registry.value("shard_jobs_expired_on_failover_total")
    assert moved >= 1
    assert result.registry.value("shard_rerouted_arrivals_total") >= 1
    assert result.registry.value("shard_crashes_total") == 1
    assert result.registry.value("shard_restarts_total") == 1


def test_sim_no_fault_schedule_is_bit_identical():
    # A fault plane whose events never fire must not perturb the run:
    # the failover layer's hooks are exact no-ops on the admission,
    # completion and RNG paths.
    trace = _sim_trace(duration_s=20.0, rate=20.0, seed=9)
    kwargs = dict(
        shards=2, cluster_spec=ClusterSpec(n_nodes=4), seed=3,
        engine="fast",
    )
    plain = run_sharded_policy(
        "rscale", get_mix("medium"), trace, **kwargs)
    armed = run_sharded_policy(
        "rscale", get_mix("medium"), trace,
        shard_faults=ShardFaultSchedule.parse("kill@1e6=1"),
        **kwargs)
    assert np.array_equal(np.sort(plain.latencies_ms),
                          np.sort(armed.latencies_ms))
    # The armed summary gains failover bookkeeping keys (all zero /
    # conserved); every key the plain run reports must be unchanged.
    armed_summary = armed.summary()
    for key, value in plain.summary().items():
        assert armed_summary[key] == value, key
    assert armed.orchestration["failovers"] == 0


def test_sim_failover_validation():
    trace = _sim_trace(duration_s=2.0, rate=2.0)
    mix = get_mix("medium")
    faults = ShardFaultSchedule.parse("kill@1=0")
    with pytest.raises(ValueError, match="shards > 1"):
        run_sharded_policy("rscale", mix, trace, shards=1,
                           shard_faults=faults)
    with pytest.raises(ValueError, match="event-loop"):
        run_sharded_policy("rscale", mix, trace, shards=2,
                           engine="vector", shard_faults=faults)
    with pytest.raises(ValueError, match="shard_workers"):
        run_sharded_policy("rscale", mix, trace, shards=2,
                           shard_workers=2, shard_faults=faults)
    with pytest.raises(ValueError, match="hash"):
        run_sharded_policy("rscale", mix, trace, shards=2,
                           engine="fast", stage_routing="hash",
                           shard_faults=faults)
    with pytest.raises(ValueError, match="unknown shards"):
        run_sharded_policy(
            "rscale", mix, trace, shards=2, engine="fast",
            shard_faults=ShardFaultSchedule.parse("kill@1=7"))


# ---------------------------------------------------------------------------
# live plane end-to-end


FAST = 0.005


def test_live_kill_shard_fails_over(tmp_path):
    trace = poisson_trace(rate_rps=8.0, duration_s=10.0, seed=13)
    result = serve_sharded(
        "rscale", get_mix("medium"), trace, shards=2,
        cluster_spec=ClusterSpec(n_nodes=4), seed=13,
        options=ServeOptions(
            time_scale=FAST, drain_timeout_ms=30_000.0,
            journal_dir=str(tmp_path), checkpoint_interval_ms=3_000.0),
        kill_shard_at_ms=5_000.0, kill_shard_id=1,
        heartbeat_interval_ms=500.0)
    assert result.failover["victim"] == 1
    assert result.failover["declared_at_ms"] > 5_000.0
    assert result.failover["epoch"] >= 1
    assert result.registry.total("shard_failovers_total") >= 1
    # Heartbeat files exist for both shards; the victim's froze.
    for shard_id in (0, 1):
        doc = json.loads(
            (tmp_path / heartbeat_basename(shard_id)).read_text())
        assert doc["shard_id"] == shard_id
    # Every journal family conserves (victim = WAL + takeover files).
    assert result.journal_conserved, result.journal
    verdict = plane_journal_conservation(tmp_path, 2, victim=1)
    assert all(v["conserved"] for v in verdict.values())
    # Plane totals: every created job reaches one terminal somewhere.
    assert result.n_completed + result.n_failed + result.shed_jobs \
        == result.n_jobs
    assert (tmp_path / "orchestrator.lease").exists()


def test_live_kill_validation(tmp_path):
    trace = poisson_trace(rate_rps=2.0, duration_s=2.0, seed=1)
    mix = get_mix("medium")
    with pytest.raises(ValueError, match="survivor"):
        serve_sharded("rscale", mix, trace, shards=1,
                      options=ServeOptions(journal_dir=str(tmp_path)),
                      kill_shard_at_ms=1_000.0)
    with pytest.raises(ValueError, match="journal_dir"):
        serve_sharded("rscale", mix, trace, shards=2,
                      kill_shard_at_ms=1_000.0)
    with pytest.raises(ValueError, match="out of range"):
        serve_sharded("rscale", mix, trace, shards=2,
                      options=ServeOptions(journal_dir=str(tmp_path)),
                      kill_shard_at_ms=1_000.0, kill_shard_id=5)


# ---------------------------------------------------------------------------
# journal sentinel-lock hardening (audited steal, live-pid refusal)


def test_stale_lock_steal_is_logged_with_owner_and_claim(tmp_path,
                                                         caplog):
    path = tmp_path / "journal.jsonl"
    (tmp_path / "journal.jsonl.lock").write_text("999999999:1")
    with caplog.at_level(logging.WARNING, logger="repro.serve.journal"):
        journal = RequestJournal(path)
    journal.close()
    steal_logs = [r for r in caplog.records
                  if "stealing stale journal lock" in r.getMessage()]
    assert len(steal_logs) == 1
    message = steal_logs[0].getMessage()
    # The audit trail names the dead owner and the thief's claim.
    assert "999999999:1" in message
    assert f"{os.getpid()}:" in message


def test_takeover_fence_refused_while_owner_lives(tmp_path):
    # A live foreign owner (pid 1) means the shard is slow, not dead:
    # the takeover must fall back to read-only replay, never steal.
    directory = tmp_path
    victim_journal = RequestJournal(directory / "journal-1.jsonl")
    victim_journal.append(EV_ADMIT, 0, 100.0, app="img", scale=1.0)
    victim_journal.close()
    (directory / "journal-1.jsonl.lock").write_text("1:1")
    for shard_id, t in ((0, 9_000.0), (1, 2_000.0)):
        (directory / heartbeat_basename(shard_id)).write_text(
            json.dumps({"shard_id": shard_id, "t_ms": t, "pid": 1}))

    from repro.shard.live import _fail_over

    registry = MetricsRegistry()
    results, info, _snapshots = _fail_over(
        policy_name="rscale",
        mix=get_mix("medium"),
        shards=2,
        victim=1,
        ring=ConsistentHashRing(2),
        grants=[2, 2],
        cluster_spec=ClusterSpec(n_nodes=4),
        seed=1,
        options=ServeOptions(
            time_scale=FAST, journal_dir=str(directory),
            drain_timeout_ms=10_000.0),
        heartbeat_interval_ms=500.0,
        miss_threshold=2,
        hysteresis=1,
        registry=registry,
        config_overrides={"idle_timeout_ms": 60_000.0},
    )
    assert info["fence_taken"] is False
    assert registry.value("shard_takeover_fence_refused_total") == 1
    # The replay itself still ran read-only: the one admitted job was
    # adjudicated (expired — its 1 s SLO lapsed long before declare).
    assert info["requeued"] + info["expired"] == 1
    # The live owner's sentinel is untouched.
    assert (directory / "journal-1.jsonl.lock").read_text() == "1:1"


def test_plane_journal_conservation_flags_loss(tmp_path):
    journal = RequestJournal(tmp_path / "journal-0.jsonl")
    journal.append(EV_ADMIT, 7, 100.0, app="img", scale=1.0)
    journal.close()   # admitted, never terminal -> lost
    other = RequestJournal(tmp_path / "journal-1.jsonl")
    other.append(EV_ADMIT, 7, 100.0, app="img", scale=1.0)
    other.append(EV_COMPLETE, 7, 200.0)
    other.close()
    verdict = plane_journal_conservation(tmp_path, 2)
    # Families are per home shard: shard 1's job 7 completing does NOT
    # cover shard 0's distinct job 7 (forked children collide on ids).
    assert not verdict[0]["conserved"]
    assert verdict[0]["lost_jobs"] == [7]
    assert verdict[1]["conserved"]
