"""Shared pytest plumbing: the golden-snapshot update flag.

``pytest --update-golden`` rewrites the snapshots under ``tests/golden/``
from the current run instead of diffing against them.  Tests consume the
decision through the ``update_golden`` fixture.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite golden snapshots from the current run",
    )


@pytest.fixture
def update_golden(request):
    return request.config.getoption("--update-golden")
