"""Edge-case coverage across modules: boundaries, degenerate inputs,
numerical corners."""

import numpy as np
import pytest

from repro.cluster.energy import EnergyMeter, NodePowerModel
from repro.cluster.node import Node
from repro.metrics.stats import cdf_points
from repro.prediction.classical import (
    LinearRegressionPredictor,
    LogisticRegressionPredictor,
    MovingWindowAveragePredictor,
)
from repro.prediction.deepar import _erfinv
from repro.prediction.nn import softplus
from repro.sim.engine import Simulator
from repro.traces.base import ArrivalTrace, RateProfile
from repro.workloads.applications import Application
from repro.workloads.microservices import MICROSERVICES


class TestErfinv:
    @pytest.mark.parametrize("p", [0.1, 0.25, 0.5, 0.75, 0.9, 0.975])
    def test_matches_normal_quantiles(self, p):
        # Round-trip against empirical standard-normal quantiles.
        z = np.sqrt(2.0) * _erfinv(2.0 * p - 1.0)
        rng = np.random.default_rng(0)
        empirical = np.quantile(rng.standard_normal(200_000), p)
        assert z == pytest.approx(empirical, abs=0.02)

    def test_symmetry(self):
        assert _erfinv(0.3) == pytest.approx(-_erfinv(-0.3))
        assert _erfinv(0.0) == pytest.approx(0.0, abs=1e-12)


class TestSoftplus:
    def test_large_positive_no_overflow(self):
        assert softplus(np.array([700.0]))[0] == pytest.approx(700.0)

    def test_large_negative_underflows_to_zero(self):
        assert softplus(np.array([-700.0]))[0] == pytest.approx(0.0, abs=1e-12)

    def test_zero(self):
        assert softplus(np.array([0.0]))[0] == pytest.approx(np.log(2.0))


class TestClassicalPredictorCorners:
    def test_mwa_window_one(self):
        assert MovingWindowAveragePredictor(window=1).predict([3.0, 9.0]) == 9.0

    def test_linear_single_point(self):
        assert LinearRegressionPredictor(window=5).predict([4.0]) == 4.0

    def test_logistic_short_history(self):
        assert LogisticRegressionPredictor().predict([5.0, 6.0]) == 6.0

    def test_logistic_decreasing_series_finite(self):
        pred = LogisticRegressionPredictor().predict(
            [100.0, 80.0, 60.0, 40.0, 20.0, 10.0, 5.0, 3.0, 2.0, 1.0]
        )
        assert np.isfinite(pred) and pred >= 0.0


class TestSimulatorCorners:
    def test_schedule_at_exactly_now(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: sim.schedule_at(sim.now,
                                                   lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [10.0]

    def test_zero_delay_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0.0]

    def test_run_until_zero(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        assert sim.run(until=0.0) == 0.0
        assert sim.pending() == 1

    def test_pending_counts_live_events(self):
        sim = Simulator()
        e1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending() == 2
        sim.cancel(e1)
        assert sim.pending() == 1


class TestTraceCorners:
    def test_single_point_profile(self):
        p = RateProfile(np.array([0.0]), np.array([5.0]))
        assert p.rate_at(1e9) == 5.0

    def test_empty_trace_duration(self):
        t = ArrivalTrace(np.empty(0))
        assert t.duration_ms == 0.0
        assert t.mean_rate_rps == 0.0

    def test_single_arrival_rate(self):
        assert ArrivalTrace(np.array([5.0])).mean_rate_rps == 0.0

    def test_rate_series_zero_duration(self):
        t = ArrivalTrace(np.array([0.0]))
        series = t.rate_series(1000.0, duration_ms=1.0)
        assert series.shape == (1,)

    def test_cdf_points_empty(self):
        assert cdf_points([]).size == 0


class TestApplicationCorners:
    def test_single_stage_chain(self):
        app = Application(
            name="solo",
            stages=(MICROSERVICES["QA"],),
            slo_ms=1000.0,
            transition_overhead_ms=50.0,
        )
        assert app.n_stages == 1
        assert app.slack_ms == pytest.approx(1000.0 - 56.1 - 50.0)

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            Application(name="none", stages=(), slo_ms=1000.0)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            Application(
                name="bad", stages=(MICROSERVICES["QA"],),
                slo_ms=1000.0, transition_overhead_ms=-1.0,
            )


class TestEnergyCorners:
    def test_meter_without_samples(self):
        meter = EnergyMeter()
        assert meter.mean_power_w == 0.0
        assert meter.mean_active_nodes == 0.0
        assert meter.total_kwh == 0.0

    def test_fractional_core_utilization_power(self):
        model = NodePowerModel(idle_w=100.0, peak_w=200.0)
        node = Node(node_id=0, cores=16)
        node.allocate(0.5, 64)  # 1/32 of the cores
        expected = 100.0 + 100.0 * (0.5 / 16)
        assert model.node_power_w(node, 0.0) == pytest.approx(expected)

    def test_gate_after_zero_gates_immediately(self):
        model = NodePowerModel(gate_after_ms=0.0)
        node = Node(node_id=0)
        node.idle_since_ms = 100.0
        assert model.node_power_w(node, 100.0) == 0.0
