"""Span invariants over real runs: the trace tree must tell the truth.

Both the simulator and the live runtime feed the same span assembler, so
both must satisfy the same structural invariants: one root per terminal
request, children nested inside their root's interval, component
durations bounded by end-to-end, and (live) backoff spans that agree
with the retry layer's own counters.
"""

import pytest

from repro.core.policies import make_policy_config
from repro.obs.export import validate_span_dict
from repro.obs.trace import SPAN_NAMES, Tracer
from repro.runtime.system import ClusterSpec, ServerlessSystem
from repro.serve import FaultConfig, RetryPolicy, ServeOptions, ServingRuntime
from repro.traces import poisson_trace
from repro.workloads import get_mix

EPS = 1e-6


@pytest.fixture(scope="module")
def sim_run():
    tracer = Tracer()
    system = ServerlessSystem(
        config=make_policy_config("rscale", idle_timeout_ms=60_000.0),
        mix=get_mix("light"),
        cluster_spec=ClusterSpec(n_nodes=4),
        seed=11,
        tracer=tracer,
    )
    result = system.run(poisson_trace(6.0, 12.0, seed=11))
    return tracer, result, None


@pytest.fixture(scope="module")
def vector_run():
    # Same workload as ``sim_run`` but through the flat-array engine:
    # its synthesized span tree must satisfy every structural invariant
    # the event-loop engines do.
    tracer = Tracer()
    system = ServerlessSystem(
        config=make_policy_config("rscale", idle_timeout_ms=60_000.0),
        mix=get_mix("light"),
        cluster_spec=ClusterSpec(n_nodes=4),
        seed=11,
        tracer=tracer,
        engine="vector",
    )
    result = system.run(poisson_trace(6.0, 12.0, seed=11))
    return tracer, result, None


@pytest.fixture(scope="module")
def live_run():
    tracer = Tracer()
    runtime = ServingRuntime(
        config=make_policy_config("rscale", idle_timeout_ms=60_000.0),
        mix=get_mix("light"),
        seed=11,
        options=ServeOptions(
            time_scale=0.005,
            faults=FaultConfig(crash_prob=0.2),
            retry=RetryPolicy(max_attempts=3, base_backoff_ms=5.0),
        ),
        tracer=tracer,
    )
    result = runtime.run(poisson_trace(15.0, 4.0, seed=11))
    return tracer, result, runtime


@pytest.fixture(scope="module", params=["sim", "vector", "live"])
def run(request, sim_run, vector_run, live_run):
    return {"sim": sim_run, "vector": vector_run, "live": live_run}[
        request.param]


class TestSpanInvariants:
    def test_schema_valid(self, run):
        tracer, _, _ = run
        assert tracer.spans
        for span in tracer.spans:
            validate_span_dict(span.to_dict())
            assert span.name in SPAN_NAMES

    def test_span_ids_unique(self, run):
        tracer, _, _ = run
        ids = [s.span_id for s in tracer.spans]
        assert len(ids) == len(set(ids))

    def test_one_root_per_terminal_request(self, run):
        tracer, result, _ = run
        n_terminal = result.n_completed + result.n_failed
        roots = tracer.roots()
        assert len(roots) == n_terminal
        assert len({r.trace_id for r in roots}) == n_terminal
        for trace_id, spans in tracer.traces().items():
            n_roots = sum(1 for s in spans if s.parent_id is None)
            # Traces may hold only backoff spans (job never terminal,
            # e.g. cut off by the trace end), but never two roots.
            assert n_roots <= 1, trace_id

    def test_children_nest_within_root(self, run):
        tracer, _, _ = run
        for root in tracer.roots():
            spans = tracer.traces()[root.trace_id]
            for child in spans:
                if child.parent_id is None:
                    continue
                assert child.parent_id == root.span_id
                assert child.start_ms >= root.start_ms - EPS
                assert child.end_ms <= root.end_ms + EPS

    def test_components_bounded_by_e2e(self, run):
        tracer, _, _ = run
        for root in tracer.roots():
            spans = tracer.traces()[root.trace_id]
            queue_wait = sum(
                s.duration_ms for s in spans if s.name == "queue_wait"
            )
            exec_ms = sum(s.duration_ms for s in spans if s.name == "exec")
            assert queue_wait + exec_ms <= root.duration_ms + EPS
            # cold_start + batch_form partition queue_wait per stage, so
            # their totals can never exceed it.
            sub = sum(
                s.duration_ms for s in spans
                if s.name in ("cold_start", "batch_form")
            )
            assert sub <= queue_wait + EPS


class TestLiveRetrySpans:
    def test_chaos_run_actually_retried(self, live_run):
        _, result, runtime = live_run
        assert result.task_retries > 0
        assert runtime.retry_manager.retries_scheduled == result.task_retries

    def test_backoff_spans_match_retry_counters(self, live_run):
        tracer, _, runtime = live_run
        backoffs = tracer.spans_named("backoff")
        assert len(backoffs) == runtime.retry_manager.retries_scheduled

    def test_backoff_attempt_attrs(self, live_run):
        tracer, _, runtime = live_run
        max_attempts = runtime.options.retry.max_attempts
        for span in tracer.spans_named("backoff"):
            attempt = span.attrs["attempt"]
            assert isinstance(attempt, int)
            assert 1 <= attempt < max_attempts
            assert span.attrs["reason"]
            assert span.parent_id == f"{span.trace_id}/request"
