"""Tests for slack distribution, batch sizing and stage plans."""

import math

import pytest

from repro.core.slack import (
    SlackDivision,
    batch_size_for,
    build_stage_plan,
    distribute_slack,
    function_batch_sizes,
    function_response_ms,
    function_slack_ms,
)
from repro.workloads import get_application


class TestDistributeSlack:
    def test_proportional_sums_to_total(self):
        for name in ["ipa", "img", "detect-fatigue", "face-security"]:
            app = get_application(name)
            slacks = distribute_slack(app, SlackDivision.PROPORTIONAL)
            assert sum(slacks) == pytest.approx(app.slack_ms)

    def test_equal_sums_to_total(self):
        app = get_application("ipa")
        slacks = distribute_slack(app, SlackDivision.EQUAL)
        assert sum(slacks) == pytest.approx(app.slack_ms)
        assert all(s == pytest.approx(slacks[0]) for s in slacks)

    def test_proportional_weights_by_exec_time(self):
        app = get_application("detect-fatigue")
        slacks = distribute_slack(app, SlackDivision.PROPORTIONAL)
        # HS (151.2ms) dominates, so it gets the largest slack share.
        assert slacks[0] == max(slacks)
        ratio = slacks[0] / app.slack_ms
        exec_ratio = app.stage_exec_ms(0) / app.total_exec_ms
        assert ratio == pytest.approx(exec_ratio)

    def test_proportional_gives_uniform_batch_sizes(self):
        # The paper: proportional allocation "results in having similar
        # batch sizes for the containers at every stage".
        app = get_application("ipa")
        slacks = distribute_slack(app, SlackDivision.PROPORTIONAL)
        batches = [
            slack / svc.mean_exec_ms for slack, svc in zip(slacks, app.stages)
        ]
        assert max(batches) - min(batches) < 1e-9


class TestBatchSize:
    def test_formula(self):
        assert batch_size_for(600.0, 100.0) == 6

    def test_floor_behaviour(self):
        assert batch_size_for(599.0, 100.0) == 5

    def test_minimum_one(self):
        assert batch_size_for(10.0, 100.0) == 1
        assert batch_size_for(0.0, 100.0) == 1

    def test_max_batch_cap(self):
        # Sub-millisecond stages (NLP) would otherwise explode.
        assert batch_size_for(500.0, 0.19, max_batch=64) == 64

    def test_invalid_exec(self):
        with pytest.raises(ValueError):
            batch_size_for(100.0, 0.0)

    def test_negative_slack_clamps_to_one(self):
        # A stage can end up with zero or negative residual slack (SLO
        # already blown upstream); sizing must degrade to no batching,
        # never raise or return 0.
        assert batch_size_for(-1.0, 10.0) == 1
        assert batch_size_for(-1e9, 10.0) == 1

    def test_invalid_max_batch(self):
        with pytest.raises(ValueError):
            batch_size_for(100.0, 10.0, max_batch=0)


class TestStagePlan:
    def test_plan_consistency(self):
        app = get_application("ipa")
        plan = build_stage_plan(app)
        assert len(plan.stage_slack_ms) == app.n_stages
        assert len(plan.stage_batch) == app.n_stages
        for slack, batch, resp, svc in zip(
            plan.stage_slack_ms, plan.stage_batch, plan.stage_response_ms, app.stages
        ):
            assert resp == pytest.approx(slack + svc.mean_exec_ms)
            assert batch >= 1
            # Full local queue must drain within the allocated slack.
            assert batch * svc.mean_exec_ms <= slack or batch == 1

    def test_non_batching_plan_pins_batch_to_one(self):
        plan = build_stage_plan(get_application("ipa"), batching=False)
        assert all(b == 1 for b in plan.stage_batch)
        # Slack accounting survives for LSF.
        assert sum(plan.stage_slack_ms) == pytest.approx(
            get_application("ipa").slack_ms
        )

    def test_stage_index_of(self):
        plan = build_stage_plan(get_application("img"))
        assert plan.stage_index_of("NLP") == 1
        with pytest.raises(KeyError):
            plan.stage_index_of("ASR")

    def test_equal_division_plan(self):
        plan = build_stage_plan(
            get_application("ipa"), division=SlackDivision.EQUAL
        )
        assert plan.stage_slack_ms[0] == pytest.approx(plan.stage_slack_ms[1])


class TestSharedFunctionAggregation:
    def test_min_batch_across_apps(self):
        plans = [
            build_stage_plan(get_application("ipa")),
            build_stage_plan(get_application("img")),
        ]
        sizes = function_batch_sizes(plans)
        # Shared stages take the conservative minimum.
        ipa_qa = plans[0].stage_batch[plans[0].stage_index_of("QA")]
        img_qa = plans[1].stage_batch[plans[1].stage_index_of("QA")]
        assert sizes["QA"] == min(ipa_qa, img_qa)
        # Non-shared stages keep their own value.
        assert sizes["ASR"] == plans[0].stage_batch[0]
        assert sizes["IMC"] == plans[1].stage_batch[0]

    def test_min_slack_and_response(self):
        plans = [
            build_stage_plan(get_application("ipa")),
            build_stage_plan(get_application("img")),
        ]
        slacks = function_slack_ms(plans)
        responses = function_response_ms(plans)
        assert set(slacks) == {"ASR", "NLP", "QA", "IMC"}
        for fn in slacks:
            candidates = []
            for plan in plans:
                try:
                    idx = plan.stage_index_of(fn)
                except KeyError:
                    continue
                candidates.append(plan.stage_slack_ms[idx])
            assert slacks[fn] == pytest.approx(min(candidates))
        for fn in responses:
            assert responses[fn] > slacks[fn]  # response = slack + exec
