"""Tests for the sharded simulation plane (``repro.shard.sim`` and the
orchestrator).

The anchor invariant: ``shards=1`` routes to the exact pre-existing
single-gateway path, so its results are bit-identical to
``run_policy``.  For ``shards>1`` the suite checks conservation (the
partition is a disjoint cover), cross-engine agreement, orchestrator
rebalancing on skewed grants, and the routing/validation edges.
"""

import numpy as np
import pytest

from repro.runtime.system import ClusterSpec, run_policy
from repro.shard import run_sharded_policy
from repro.shard.orchestrator import divide_surge_budget
from repro.shard.sim import ShardedRunResult, plan_node_grants
from repro.traces import step_poisson_trace
from repro.workloads import get_mix

MIX = get_mix("medium")


def _trace(rate=20.0, duration=30.0, seed=5):
    return step_poisson_trace(rate, duration, variation=0.4, seed=seed)


def _run(shards, **kwargs):
    kwargs.setdefault("cluster_spec", ClusterSpec(n_nodes=4))
    kwargs.setdefault("seed", 5)
    return run_sharded_policy(
        "rscale", MIX, _trace(), shards=shards, **kwargs)


# ---------------------------------------------------------------------------
# 1-shard bit-identity


@pytest.mark.parametrize("engine", ["fast", "vector"])
def test_one_shard_is_bit_identical_to_run_policy(engine):
    baseline = run_policy(
        "rscale", MIX, _trace(), cluster_spec=ClusterSpec(n_nodes=4),
        seed=5, engine=engine)
    sharded = _run(1, engine=engine)
    assert type(sharded) is type(baseline)
    assert sharded.summary() == baseline.summary()
    np.testing.assert_array_equal(
        sharded.latencies_ms, baseline.latencies_ms)


def test_run_policy_delegates_shards_to_sharded_plane():
    result = run_policy(
        "rscale", MIX, _trace(), cluster_spec=ClusterSpec(n_nodes=4),
        seed=5, shards=2)
    assert isinstance(result, ShardedRunResult)
    assert result.n_shards == 2


# ---------------------------------------------------------------------------
# conservation and cross-engine agreement


def test_two_shard_conservation_eventloop():
    trace = _trace()
    result = _run(2, engine="fast")
    assert result.n_jobs == len(trace.arrivals_ms)
    assert result.n_completed + result.n_failed + result.shed_jobs \
        == result.n_jobs
    assert sorted(result.per_shard) == [0, 1]
    assert all(r.n_jobs > 0 for r in result.per_shard.values())


def test_sharded_fast_and_vector_engines_agree():
    fast = _run(2, engine="fast")
    vector = _run(2, engine="vector")
    s_fast, s_vec = fast.summary(), vector.summary()
    assert s_fast["jobs_per_shard"] == s_vec["jobs_per_shard"]
    for key in ("jobs", "completed", "failed", "shed_jobs",
                "median_latency_ms", "p99_latency_ms"):
        assert s_fast[key] == pytest.approx(s_vec[key]), key


def test_process_mode_matches_inprocess_static_partition():
    # With no rebalance triggered, the orchestrated in-process plane
    # and the isolated process fan-out are the same computation.
    inproc = _run(2, engine="vector")
    procs = _run(2, engine="vector", shard_workers=2)
    assert procs.mode == "processes"
    s_in, s_pr = inproc.summary(), procs.summary()
    assert s_in["jobs_per_shard"] == s_pr["jobs_per_shard"]
    for key in ("completed", "median_latency_ms", "p99_latency_ms"):
        assert s_in[key] == pytest.approx(s_pr[key]), key


# ---------------------------------------------------------------------------
# orchestrator


def test_orchestrator_rebalances_skewed_grants():
    # Shard 0 starts starved (1 of 4 nodes) under a symmetric load
    # split, so its pressure dominates and the orchestrator must move
    # capacity toward it.
    result = _run(2, engine="fast", initial_node_grants=[1, 3],
                  skew_threshold=1.5)
    orch = result.orchestration
    assert orch["ticks"] > 0
    assert orch["rebalances"] > 0
    assert orch["nodes_moved"] > 0
    assert orch["store_writes"] > 0  # reports go through the store


def test_orchestration_summary_prices_store_traffic():
    result = _run(2, engine="fast")
    orch = result.orchestration
    assert orch["store_reads"] >= orch["ticks"]
    assert orch["store_mean_access_ms"] >= 0.0


# ---------------------------------------------------------------------------
# hash stage routing


def test_hash_stage_routing_pays_cross_shard_hops():
    local = _run(2, engine="fast", stage_routing="local")
    hashed = _run(2, engine="fast", stage_routing="hash")
    assert local.orchestration["cross_shard_hops"] == 0
    assert hashed.orchestration["cross_shard_hops"] > 0
    # Conservation still holds globally (jobs may complete on a
    # foreign shard, so only the aggregate is conserved).
    assert hashed.n_completed + hashed.n_failed + hashed.shed_jobs \
        == hashed.n_jobs


def test_hash_routing_rejected_off_the_event_loop():
    with pytest.raises(ValueError, match="event-loop"):
        _run(2, engine="vector", stage_routing="hash")
    with pytest.raises(ValueError, match="in-process"):
        _run(2, engine="fast", stage_routing="hash", shard_workers=2)


# ---------------------------------------------------------------------------
# units: grants and surge budget


def test_plan_node_grants_default_split():
    assert plan_node_grants(8, 3) == [3, 3, 2]
    assert plan_node_grants(4, 4) == [1, 1, 1, 1]


def test_plan_node_grants_validation():
    with pytest.raises(ValueError):
        plan_node_grants(2, 3)
    with pytest.raises(ValueError):
        plan_node_grants(4, 2, initial_node_grants=[4, 0])
    with pytest.raises(ValueError):
        plan_node_grants(4, 2, initial_node_grants=[2, 3])
    with pytest.raises(ValueError):
        plan_node_grants(4, 2, initial_node_grants=[4])
    assert plan_node_grants(4, 2, initial_node_grants=[3, 1]) == [3, 1]


def test_divide_surge_budget_sums_exactly():
    for total in (1, 5, 7, 100):
        for pressures in ([1.0, 1.0], [5.0, 1.0, 1.0], [0.0, 0.0]):
            shares = divide_surge_budget(total, pressures)
            assert sum(shares) == total
            assert all(s >= 0 for s in shares)
    # Proportionality: the loaded shard gets the larger share.
    shares = divide_surge_budget(10, [3.0, 1.0])
    assert shares[0] > shares[1]


def test_entry_point_validation():
    with pytest.raises(ValueError):
        _run(0)
    with pytest.raises(ValueError):
        _run(2, stage_routing="bogus")
