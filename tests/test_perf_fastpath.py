"""Simulator fast-path tests: EventQueue invariants under cancellation
churn (hypothesis), heap-compaction guards, bulk-arrival stream cursors,
coalesced tickers, and fast-vs-legacy arrival-injection parity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.policies import make_policy_config
from repro.runtime.system import ClusterSpec, ServerlessSystem
from repro.sim.engine import Event, EventQueue, SimulationError, Simulator
from repro.sim.process import CoalescedTicker
from repro.traces import step_poisson_trace
from repro.workloads import get_mix


def _push(queue, time, priority=0):
    return queue.push(Event(time=time, priority=priority))


def _cancel(queue, event):
    """Cancel the way Simulator.cancel does: mark + notify."""
    event.cancel()
    queue.notify_cancel()


# Each op is (time, priority, cancel_flag); the queue sees pushes in
# list order interleaved with cancellations of flagged events.
_ops = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        st.integers(min_value=-3, max_value=3),
        st.booleans(),
    ),
    min_size=1,
    max_size=200,
)


class TestEventQueueProperties:
    @given(_ops)
    @settings(max_examples=120, deadline=None)
    def test_pop_order_and_len_under_cancellation(self, ops):
        queue = EventQueue()
        survivors = []
        for time, priority, cancel in ops:
            event = _push(queue, time, priority)
            if cancel:
                _cancel(queue, event)
            else:
                survivors.append(event)
        assert len(queue) == len(survivors)
        popped = []
        while queue:
            popped.append(queue.pop())
        # Total order: (time, priority, seq) ascending — exactly the
        # surviving events, each exactly once.
        keys = [(e.time, e.priority, e.seq) for e in popped]
        assert keys == sorted(keys)
        assert [e.seq for e in popped] == sorted(
            e.seq for e in survivors
        ) or len(popped) == len(survivors)
        assert {id(e) for e in popped} == {id(e) for e in survivors}
        assert len(queue) == 0
        assert queue.pop() is None

    @given(_ops)
    @settings(max_examples=60, deadline=None)
    def test_forced_compaction_preserves_pop_order(self, ops):
        plain, compacted = EventQueue(), EventQueue()
        for time, priority, cancel in ops:
            for queue in (plain, compacted):
                event = _push(queue, time, priority)
                if cancel:
                    _cancel(queue, event)
            compacted.compact()  # compact after every op: worst case
        a = [e.seq for e in iter(plain.pop, None)]
        b = [e.seq for e in iter(compacted.pop, None)]
        assert a == b

    @given(_ops)
    @settings(max_examples=60, deadline=None)
    def test_peek_time_matches_next_pop(self, ops):
        queue = EventQueue()
        events = []
        for time, priority, cancel in ops:
            event = _push(queue, time, priority)
            if cancel:
                _cancel(queue, event)
            else:
                events.append(event)
        while queue:
            head = queue.peek_time()
            event = queue.pop()
            assert head == event.time


class TestCompactionGuard:
    def test_mass_cancellation_shrinks_heap(self):
        """10k cancels must not leave 10k dead entries in the heap."""
        queue = EventQueue()
        keeper = _push(queue, 1e9)
        cancelled = [_push(queue, float(i)) for i in range(10_000)]
        for event in cancelled:
            _cancel(queue, event)
        assert len(queue) == 1
        # Compaction kicked in: the heap holds nowhere near 10k dead
        # entries (the invariant is cancelled <= ~half the heap).
        assert queue.heap_size() < 100
        assert queue.compactions >= 1
        assert queue.pop() is keeper

    def test_small_heaps_skip_compaction(self):
        queue = EventQueue()
        events = [_push(queue, float(i)) for i in range(10)]
        for event in events[:8]:
            _cancel(queue, event)
        assert queue.compactions == 0  # below the 64-entry threshold
        assert [e.time for e in iter(queue.pop, None)] == [8.0, 9.0]

    def test_pop_path_decrements_cancelled_debt(self):
        queue = EventQueue()
        events = [_push(queue, float(i)) for i in range(100)]
        for event in events[:30]:  # below the >50% trigger
            _cancel(queue, event)
        while queue:
            queue.pop()
        # Lazy skipping settled the debt; a later compact drops nothing.
        assert queue.compact() == 0

    def test_simulator_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule_at(5.0, lambda: None)
        sim.cancel(event)
        sim.cancel(event)
        assert len(sim._queue) == 0


class TestScheduleStream:
    def test_stream_fires_each_time_once_in_order(self):
        sim = Simulator()
        times = np.array([1.0, 2.0, 2.0, 5.5, 9.0])
        fired = []
        sim.schedule_stream(times, lambda: fired.append(sim.now))
        sim.run()
        assert fired == list(times)

    def test_heap_stays_small_for_large_streams(self):
        sim = Simulator()
        times = np.arange(10_000, dtype=float)
        seen = []
        cursor = sim.schedule_stream(times, lambda: seen.append(sim.now))
        assert sim.heap_size() == 1  # one cursor event, not 10k
        sim.run(until=4999.0)
        assert len(seen) == 5000
        assert cursor.remaining == 5000
        assert sim.heap_size() <= 2

    def test_stream_interleaves_with_scheduled_events(self):
        sim = Simulator()
        order = []
        sim.schedule_stream(
            np.array([1.0, 3.0]), lambda: order.append(("stream", sim.now))
        )
        sim.schedule_at(2.0, lambda: order.append(("event", sim.now)))
        sim.run()
        assert order == [("stream", 1.0), ("event", 2.0), ("stream", 3.0)]

    def test_cancel_stops_future_firings(self):
        sim = Simulator()
        fired = []
        cursor = sim.schedule_stream(
            np.array([1.0, 2.0, 3.0]), lambda: fired.append(sim.now)
        )
        sim.schedule_at(1.5, cursor.cancel)
        sim.run()
        assert fired == [1.0]
        assert cursor.remaining == 0

    def test_empty_and_past_streams(self):
        sim = Simulator()
        assert sim.schedule_stream(np.empty(0), lambda: None) is None
        sim.schedule_at(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_stream(np.array([5.0]), lambda: None)


class TestCoalescedTicker:
    def test_one_timer_many_bodies(self):
        sim = Simulator()
        ticker = CoalescedTicker(sim, 10.0)
        hits = {"a": [], "b": []}
        ticker.add(lambda now: hits["a"].append(now))
        ticker.add(lambda now: hits["b"].append(now))
        assert sim.heap_size() == 1  # both bodies share one event
        sim.run(until=35.0)
        assert hits["a"] == [10.0, 20.0, 30.0]
        assert hits["b"] == [10.0, 20.0, 30.0]

    def test_stop_unsubscribes_and_last_stop_cancels_timer(self):
        sim = Simulator()
        ticker = CoalescedTicker(sim, 10.0)
        ticks = []
        sub_a = ticker.add(lambda now: ticks.append("a"))
        sub_b = ticker.add(lambda now: ticks.append("b"))
        sim.schedule_at(15.0, sub_a.stop)
        sim.schedule_at(25.0, sub_b.stop)
        sim.run(until=100.0)
        assert ticks == ["a", "b", "b"]
        assert ticker.subscribers == 0
        assert len(sim._queue) == 0  # timer cancelled, queue drained

    def test_subscription_counts_ticks(self):
        sim = Simulator()
        ticker = CoalescedTicker(sim, 5.0)
        sub = ticker.add(lambda now: None)
        sim.run(until=17.0)
        assert sub.ticks == 3


class TestFastPathParity:
    def test_fast_and_legacy_injection_identical_results(self):
        trace = step_poisson_trace(20.0, 40.0, variation=0.4, seed=3)
        summaries = []
        for fast_path in (True, False):
            system = ServerlessSystem(
                config=make_policy_config("rscale", idle_timeout_ms=60_000.0),
                mix=get_mix("heavy"),
                cluster_spec=ClusterSpec(n_nodes=3),
                seed=3,
                fast_path=fast_path,
            )
            summaries.append(system.run(trace).summary())
        assert summaries[0] == summaries[1]
