"""Failure-injection tests: crashes, node failures, registry brownouts."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.coldstart import ColdStartModel
from repro.cluster.faults import (
    ContainerFaultModel,
    RegistryDegradation,
    fail_node,
)
from repro.core.scheduling import SchedulingPolicy
from repro.sim.engine import Simulator
from repro.workflow.job import Job, Task
from repro.workflow.pool import FunctionPool
from repro.workloads import get_application, get_microservice


def _pool(sim, cluster=None, batch_size=2, spawn_on_demand=False,
          fault_model=None):
    cluster = cluster or Cluster(n_nodes=2)
    finished = []
    pool = FunctionPool(
        sim=sim,
        service=get_microservice("ASR"),
        cluster=cluster,
        batch_size=batch_size,
        stage_slack_ms=300.0,
        stage_response_ms=350.0,
        scheduling=SchedulingPolicy.FIFO,
        cold_start=ColdStartModel(jitter_sigma=0.0),
        rng=np.random.default_rng(0),
        on_task_finished=finished.append,
        spawn_on_demand=spawn_on_demand,
    )
    pool.fault_model = fault_model
    return pool, cluster, finished


def _task(pool):
    job = Job(app=get_application("ipa"), arrival_ms=pool.sim.now)
    task = Task(job=job, stage_index=0, enqueue_ms=pool.sim.now)
    pool.enqueue(task)
    return task


class TestContainerFaultModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ContainerFaultModel(crash_probability=1.5)
        with pytest.raises(ValueError):
            ContainerFaultModel(crash_point=0.0)

    def test_zero_probability_never_crashes(self):
        model = ContainerFaultModel(crash_probability=0.0)
        rng = np.random.default_rng(0)
        assert not any(model.should_crash(rng) for _ in range(100))

    def test_certain_crash(self):
        model = ContainerFaultModel(crash_probability=1.0)
        assert model.should_crash(np.random.default_rng(0))

    def test_crashed_task_is_retried(self):
        sim = Simulator()
        fault = ContainerFaultModel(crash_probability=1.0)
        pool, cluster, finished = _pool(sim, fault_model=fault)
        pool.prewarm(1)
        task = _task(pool)
        sim.run(until=100.0)
        # First attempt crashed; disable faults so the retry succeeds.
        assert pool.container_crashes >= 1
        assert not finished
        pool.fault_model = None
        pool.prewarm(1)
        sim.run(until=10_000.0)
        assert finished == [task]
        assert cluster.total_containers == pool.n_containers

    def test_crash_releases_node_capacity(self):
        sim = Simulator()
        fault = ContainerFaultModel(crash_probability=1.0)
        cluster = Cluster(n_nodes=1, cores_per_node=0.5)  # one slot
        pool, _, _ = _pool(sim, cluster=cluster, fault_model=fault)
        pool.prewarm(1)
        _task(pool)
        sim.run(until=1000.0)
        assert pool.container_crashes == 1
        # The dead container's core is free again.
        assert cluster.total_containers == 0
        assert cluster.place() is not None

    def test_intermittent_crashes_do_not_lose_jobs(self):
        sim = Simulator()
        fault = ContainerFaultModel(crash_probability=0.1)
        pool, _, finished = _pool(
            sim, batch_size=1, spawn_on_demand=True, fault_model=fault
        )
        tasks = [_task(pool) for _ in range(40)]
        sim.run(until=600_000.0)
        assert len(finished) == 40
        assert pool.container_crashes > 0
        # Every job eventually completed exactly once.
        assert {t.job.job_id for t in finished} == {
            t.job.job_id for t in tasks
        }


class TestNodeFailure:
    def test_kills_containers_and_requeues_tasks(self):
        sim = Simulator()
        cluster = Cluster(n_nodes=1)
        pool, _, finished = _pool(sim, cluster=cluster, batch_size=4)
        pool.prewarm(2)
        sim.run(until=1.0)
        for _ in range(6):
            _task(pool)
        # Mid-execution, the node dies.
        sim.run(until=10.0)
        destroyed = fail_node(cluster.nodes[0], [pool], sim.now)
        assert destroyed == 2
        assert pool.n_containers == 0
        assert cluster.total_containers == 0
        assert pool.queue_length == 6  # everything back in the queue
        # Replacement capacity drains the backlog.
        pool.prewarm(2)
        sim.run(until=60_000.0)
        assert len(finished) == 6

    def test_inflight_completion_event_is_noop(self):
        sim = Simulator()
        cluster = Cluster(n_nodes=1)
        pool, _, finished = _pool(sim, cluster=cluster)
        pool.prewarm(1)
        sim.run(until=1.0)
        _task(pool)
        sim.run(until=2.0)  # execution started, completion pending
        fail_node(cluster.nodes[0], [pool], sim.now)
        # The stale completion event fires harmlessly.
        sim.run(until=60_000.0)
        assert finished == []
        assert pool.queue_length == 1

    def test_failing_empty_node_is_safe(self):
        sim = Simulator()
        cluster = Cluster(n_nodes=2)
        pool, _, _ = _pool(sim, cluster=cluster)
        assert fail_node(cluster.nodes[1], [pool], sim.now) == 0


class TestRegistryDegradation:
    def test_outside_window_matches_base(self):
        base = ColdStartModel(jitter_sigma=0.0)
        degraded = RegistryDegradation(
            base, start_ms=1000.0, end_ms=2000.0, factor=5.0,
            now_fn=lambda: 0.0,
        )
        assert degraded.sample_ms("ASR") == base.sample_ms("ASR")
        assert degraded.degraded_spawns == 0

    def test_inside_window_inflates(self):
        base = ColdStartModel(jitter_sigma=0.0)
        now = {"t": 1500.0}
        degraded = RegistryDegradation(
            base, start_ms=1000.0, end_ms=2000.0, factor=5.0,
            now_fn=lambda: now["t"],
        )
        assert degraded.sample_ms("ASR") == pytest.approx(
            5.0 * base.sample_ms("ASR")
        )
        assert degraded.degraded_spawns == 1
        now["t"] = 2500.0
        assert degraded.sample_ms("ASR") == base.sample_ms("ASR")

    def test_validation(self):
        with pytest.raises(ValueError):
            RegistryDegradation(factor=0.5)
        with pytest.raises(ValueError):
            RegistryDegradation(start_ms=10.0, end_ms=5.0)

    def test_brownout_slows_spawns_end_to_end(self):
        sim = Simulator()
        cluster = Cluster(n_nodes=2)
        degraded = RegistryDegradation(
            ColdStartModel(jitter_sigma=0.0),
            start_ms=0.0, end_ms=float("inf"), factor=4.0,
            now_fn=lambda: sim.now,
        )
        finished = []
        pool = FunctionPool(
            sim=sim,
            service=get_microservice("ASR"),
            cluster=cluster,
            batch_size=1,
            stage_slack_ms=300.0,
            stage_response_ms=350.0,
            scheduling=SchedulingPolicy.FIFO,
            cold_start=degraded,
            rng=np.random.default_rng(0),
            on_task_finished=finished.append,
            spawn_on_demand=True,
        )
        job = Job(app=get_application("ipa"), arrival_ms=0.0)
        pool.enqueue(Task(job=job, stage_index=0, enqueue_ms=0.0))
        sim.run(until=120_000.0)
        assert len(finished) == 1
        # The pinned task waited ~4x the normal ASR cold start.
        wait = finished[0].record.cold_start_wait_ms
        assert wait > 3.0 * ColdStartModel().mean_ms("ASR")
