"""Tests for input-size-dependent execution and the repetition harness."""

import numpy as np
import pytest

from repro.core.policies import make_policy_config
from repro.experiments.repeats import (
    MetricStats,
    aggregate,
    compare_with_confidence,
    repeated_runs,
)
from repro.runtime.system import ServerlessSystem
from repro.traces import poisson_trace
from repro.workflow.job import Job
from repro.workloads import get_application, get_mix


class TestInputScale:
    def test_job_validation(self):
        with pytest.raises(ValueError):
            Job(app=get_application("ipa"), arrival_ms=0.0, input_scale=0.0)

    def test_default_scale_is_one(self):
        job = Job(app=get_application("ipa"), arrival_ms=0.0)
        assert job.input_scale == 1.0

    def _run(self, sampler, seed=3):
        system = ServerlessSystem(
            config=make_policy_config("bline"),
            mix=get_mix("light"),
            seed=seed,
            input_scale_sampler=sampler,
        )
        result = system.run(poisson_trace(10.0, 60.0, seed=1))
        return system, result

    def test_sampler_reaches_jobs(self):
        system, result = self._run(lambda rng: 2.0)
        assert result.n_completed == result.n_jobs
        scales = {j.input_scale for j in system.metrics.completed_jobs}
        assert scales == {2.0}

    def test_larger_inputs_run_longer(self):
        _, small = self._run(lambda rng: 0.5)
        _, large = self._run(lambda rng: 2.0)
        # Execution scales linearly with input size (section 2.2.2).
        assert large.exec_ms.mean() > 2.5 * small.exec_ms.mean()
        assert large.median_latency_ms > small.median_latency_ms

    def test_variable_inputs_spread_latency(self):
        _, fixed = self._run(None)
        _, varied = self._run(lambda rng: float(rng.uniform(0.5, 3.0)))
        assert varied.latencies_ms.std() > fixed.latencies_ms.std()

    def test_oversized_inputs_blow_slo(self):
        # Inputs ~8x the profiled size push execution past the SLO for
        # the heavier chains (the paper avoids inputs that violate it).
        _, result = self._run(lambda rng: 8.0)
        assert result.slo_violation_rate > 0.1


class TestMetricStats:
    def test_of_basic(self):
        s = MetricStats.of([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.min == 1.0 and s.max == 3.0
        assert s.n == 3
        assert s.std == pytest.approx(1.0)

    def test_single_value_zero_std(self):
        assert MetricStats.of([5.0]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MetricStats.of([])


class TestRepeatedRuns:
    @pytest.fixture(scope="class")
    def batch(self):
        return repeated_runs(
            "rscale", mix_name="light", seeds=(1, 2, 3),
            trace_factory=lambda seed: poisson_trace(12.0, 60.0, seed=seed),
            idle_timeout_ms=60_000.0,
        )

    def test_one_result_per_seed(self, batch):
        assert len(batch) == 3
        for r in batch:
            assert r.n_completed == r.n_jobs

    def test_seeds_produce_distinct_runs(self, batch):
        job_counts = [r.n_jobs for r in batch]
        assert len(set(job_counts)) > 1

    def test_aggregate_shapes(self, batch):
        stats = aggregate(batch)
        assert "avg_containers" in stats
        s = stats["avg_containers"]
        assert s.min <= s.mean <= s.max
        assert s.n == 3

    def test_aggregate_custom_metric(self, batch):
        stats = aggregate(batch, metrics=["peak_containers"])
        assert stats["peak_containers"].n == 3

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            repeated_runs("rscale", seeds=())
        with pytest.raises(ValueError):
            aggregate([])

    def test_compare_with_confidence(self):
        stats = compare_with_confidence(
            "bline", "rscale", metric="avg_containers",
            mix_name="light", seeds=(1, 2),
            trace_factory=lambda seed: poisson_trace(12.0, 45.0, seed=seed),
        )
        assert set(stats) == {"bline", "rscale"}
        # Batching reliably uses fewer containers across seeds.
        assert stats["rscale"].mean < stats["bline"].mean
