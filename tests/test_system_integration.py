"""End-to-end integration tests of the serverless platform simulation."""

import numpy as np
import pytest

from repro import (
    ClusterSpec,
    ServerlessSystem,
    get_mix,
    make_policy_config,
    poisson_trace,
    run_policy,
)
from repro.prediction.classical import EWMAPredictor
from repro.traces import step_poisson_trace


@pytest.fixture(scope="module")
def small_trace():
    return poisson_trace(20.0, 60.0, seed=1)


@pytest.fixture(scope="module")
def bursty_trace():
    return step_poisson_trace(30.0, 240.0, variation=0.5, seed=2)


class TestEndToEnd:
    @pytest.mark.parametrize("policy", ["bline", "sbatch", "rscale", "bpred"])
    def test_all_jobs_complete(self, policy, small_trace):
        result = run_policy(policy, get_mix("heavy"), small_trace, seed=3)
        assert result.n_jobs == len(small_trace)
        assert result.n_completed == result.n_jobs
        assert result.n_incomplete == 0

    def test_fifer_with_explicit_predictor(self, small_trace):
        result = run_policy(
            "fifer", get_mix("heavy"), small_trace, seed=3,
            predictor=EWMAPredictor(),
        )
        assert result.n_completed == result.n_jobs

    def test_fifer_without_predictor_raises(self, small_trace):
        with pytest.raises(ValueError, match="pre-trained"):
            run_policy("fifer", get_mix("heavy"), small_trace, seed=3)

    def test_latency_includes_exec_and_overheads(self, small_trace):
        result = run_policy("bline", get_mix("light"), small_trace, seed=3)
        # Response latency can never be below execution + transition time.
        floor = min(
            app.total_exec_ms * 0.5 + app.total_overhead_ms
            for app in get_mix("light").applications
        )
        assert result.latencies_ms.min() >= floor

    def test_latency_breakdown_consistency(self, small_trace):
        result = run_policy("rscale", get_mix("medium"), small_trace, seed=3)
        total_components = (
            result.exec_ms + result.queue_ms
        )
        # Latency = exec + queue + fixed overheads, so latency >= components.
        assert np.all(result.latencies_ms >= total_components - 1e-6)
        assert np.all(
            np.abs(result.queue_ms - result.cold_wait_ms - result.batch_wait_ms)
            < 1e-6
        )

    def test_determinism(self, small_trace):
        a = run_policy("rscale", get_mix("heavy"), small_trace, seed=7)
        b = run_policy("rscale", get_mix("heavy"), small_trace, seed=7)
        assert np.array_equal(a.latencies_ms, b.latencies_ms)
        assert a.total_spawns == b.total_spawns
        assert a.energy_joules == b.energy_joules

    def test_different_seed_differs(self, small_trace):
        a = run_policy("bline", get_mix("heavy"), small_trace, seed=7)
        b = run_policy("bline", get_mix("heavy"), small_trace, seed=8)
        assert not np.array_equal(a.latencies_ms, b.latencies_ms)

    def test_jobs_match_mix_applications(self, small_trace):
        system = ServerlessSystem(
            config=make_policy_config("bline"),
            mix=get_mix("medium"),
            seed=3,
        )
        result = system.run(small_trace)
        apps = {j.app.name for j in system.metrics.completed_jobs}
        assert apps == {"ipa", "img"}

    def test_pools_cover_all_mix_functions(self, small_trace):
        system = ServerlessSystem(
            config=make_policy_config("rscale"), mix=get_mix("heavy"), seed=0
        )
        system.run(small_trace)
        assert set(system.pools) == set(get_mix("heavy").function_names())

    def test_shared_pools_in_medium_mix(self, small_trace):
        system = ServerlessSystem(
            config=make_policy_config("rscale"), mix=get_mix("medium"), seed=0
        )
        system.run(small_trace)
        # NLP and QA serve both IPA and IMG.
        nlp_tasks = system.pools["NLP"].tasks_completed
        total_jobs = system.metrics.jobs_created
        assert nlp_tasks == total_jobs  # every job passes through NLP

    def test_statestore_records_jobs(self, small_trace):
        system = ServerlessSystem(
            config=make_policy_config("bline"), mix=get_mix("heavy"), seed=0
        )
        system.run(small_trace)
        assert system.store.count("jobs") == len(small_trace)
        assert system.store.count("stages") == len(system.pools)
        done = system.store.find("jobs", app="ipa")
        assert all("completionTime" in d for d in done)


class TestPolicyShapes:
    """The paper's qualitative orderings on a fluctuating arrival trace."""

    @pytest.fixture(scope="class")
    def results(self, bursty_trace):
        out = {}
        for policy in ["bline", "sbatch", "rscale", "bpred"]:
            out[policy] = run_policy(
                policy, get_mix("heavy"), bursty_trace, seed=5,
                idle_timeout_ms=60_000.0,
            )
        out["fifer"] = run_policy(
            "fifer", get_mix("heavy"), bursty_trace, seed=5,
            idle_timeout_ms=60_000.0, predictor=EWMAPredictor(),
        )
        return out

    def test_batching_uses_fewer_containers(self, results):
        assert results["fifer"].avg_containers < 0.6 * results["bline"].avg_containers
        # RScale batches too, but reactive cold-start storms make it
        # overshoot (paper: up to 3.5x Fifer's count while still below
        # the baseline).
        assert results["rscale"].avg_containers < results["bline"].avg_containers

    def test_batching_raises_median_latency(self, results):
        assert results["fifer"].median_latency_ms > results["bline"].median_latency_ms

    def test_sbatch_never_scales(self, results):
        assert results["sbatch"].cold_starts == 0

    def test_sbatch_worst_violations(self, results):
        assert results["sbatch"].slo_violation_rate >= max(
            results[p].slo_violation_rate for p in ["bline", "bpred", "fifer"]
        )

    def test_fifer_fewer_cold_starts_than_rscale(self, results):
        assert results["fifer"].cold_starts <= results["rscale"].cold_starts

    def test_consolidation_saves_energy(self, results):
        assert results["fifer"].energy_joules < results["bline"].energy_joules

    def test_fifer_rpc_highest(self, results):
        def mean_rpc(res):
            return np.mean(list(res.rpc_per_pool.values()))
        assert mean_rpc(results["fifer"]) > mean_rpc(results["bline"])


class TestClusterPressure:
    def test_tiny_cluster_still_completes(self):
        trace = poisson_trace(20.0, 30.0, seed=1)
        result = run_policy(
            "bline", get_mix("heavy"), trace, seed=3,
            cluster_spec=ClusterSpec(n_nodes=1, cores_per_node=8.0),
        )
        # Capacity pressure may delay but must not deadlock.
        assert result.n_completed == result.n_jobs

    def test_overload_beyond_capacity_counts_failures(self):
        # 1 node x 2 cores = 4 containers cannot sustain 60 rps of the
        # heavy mix (offered load ~9 erlangs): spawns fail, the drain
        # window expires, and unfinished jobs count as SLO violations.
        trace = poisson_trace(60.0, 30.0, seed=1)
        result = run_policy(
            "bline", get_mix("heavy"), trace, seed=3,
            cluster_spec=ClusterSpec(n_nodes=1, cores_per_node=2.0),
        )
        assert result.failed_spawns > 0
        assert result.n_incomplete > 0
        assert result.slo_violation_rate >= result.n_incomplete / result.n_jobs

    def test_scaled_cluster_spec(self):
        spec = ClusterSpec(n_nodes=10, cores_per_node=32.0)
        assert spec.total_cores == 320.0


class TestDrainBehaviour:
    def test_inflight_jobs_drain_after_trace_end(self):
        # A burst right at the end must still finish inside the drain window.
        arrivals = np.linspace(58_000.0, 59_900.0, 50)
        from repro.traces.base import ArrivalTrace
        trace = ArrivalTrace(arrivals, name="tail-burst")
        result = run_policy("rscale", get_mix("heavy"), trace, seed=3)
        assert result.n_completed == result.n_jobs
