"""Tests for the Brigade-default (single-use container) baseline.

Brigade "creates a worker pod for each job, which in turn handles
container creation ... and destroys the containers after job
completion" (section 5.1).  Fifer's first modification is to persist
containers for reuse; this baseline keeps the default behaviour and
demonstrates the cost: every stage of every job pays a cold start, so
the 1000 ms SLO is unattainable by construction — the motivating
observation of Figure 4 / section 2.2.
"""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.coldstart import ColdStartModel
from repro.core.policies import EXTENDED_POLICY_NAMES, make_policy_config
from repro.core.scheduling import SchedulingPolicy
from repro.runtime.system import run_policy
from repro.sim.engine import Simulator
from repro.traces import poisson_trace
from repro.workflow.job import Job, Task
from repro.workflow.pool import FunctionPool
from repro.workloads import get_application, get_microservice, get_mix


def _single_use_pool(sim):
    cluster = Cluster(n_nodes=2)
    finished = []
    pool = FunctionPool(
        sim=sim,
        service=get_microservice("ASR"),
        cluster=cluster,
        batch_size=1,
        stage_slack_ms=300.0,
        stage_response_ms=350.0,
        scheduling=SchedulingPolicy.FIFO,
        cold_start=ColdStartModel(jitter_sigma=0.0),
        rng=np.random.default_rng(0),
        on_task_finished=finished.append,
        spawn_on_demand=True,
        single_use=True,
    )
    return pool, cluster, finished


class TestSingleUsePool:
    def test_container_destroyed_after_task(self):
        sim = Simulator()
        pool, cluster, finished = _single_use_pool(sim)
        job = Job(app=get_application("ipa"), arrival_ms=0.0)
        pool.enqueue(Task(job=job, stage_index=0, enqueue_ms=0.0))
        sim.run(until=60_000.0)
        assert len(finished) == 1
        assert pool.n_containers == 0
        assert cluster.total_containers == 0

    def test_every_task_spawns_fresh(self):
        sim = Simulator()
        pool, _, finished = _single_use_pool(sim)
        for i in range(3):
            job = Job(app=get_application("ipa"), arrival_ms=0.0)
            pool.enqueue(Task(job=job, stage_index=0, enqueue_ms=0.0))
        sim.run(until=120_000.0)
        assert len(finished) == 3
        assert pool.total_spawns == 3  # no reuse, one spawn per task

    def test_every_task_pays_cold_start(self):
        sim = Simulator()
        pool, _, finished = _single_use_pool(sim)
        # Sequential submissions: even back-to-back tasks cold start.
        def submit():
            job = Job(app=get_application("ipa"), arrival_ms=sim.now)
            pool.enqueue(Task(job=job, stage_index=0, enqueue_ms=sim.now))
        submit()
        sim.schedule(20_000.0, submit)
        sim.run(until=120_000.0)
        assert len(finished) == 2
        for task in finished:
            assert task.record.cold_start_wait_ms > 1000.0


class TestBrigadePolicy:
    def test_registered_as_extension(self):
        assert "brigade" in EXTENDED_POLICY_NAMES
        config = make_policy_config("brigade")
        assert config.single_use and config.spawn_on_demand
        assert not config.batching

    def test_low_rate_run_completes_with_all_cold_starts(self):
        trace = poisson_trace(2.0, 60.0, seed=1)
        result = run_policy("brigade", get_mix("light"), trace, seed=3,
                            drain_ms=240_000.0)
        assert result.n_completed == result.n_jobs
        # No reuse: spawns >= one per task (jobs x stages), minus the
        # few tasks served by the initial prewarmed pool.
        total_tasks = sum(
            j.app.n_stages for j in []
        ) or result.n_jobs  # lower bound: at least one spawn per job
        assert result.total_spawns >= total_tasks
        # Cold starts put median latency far beyond the SLO — the
        # motivating pathology.
        assert result.median_latency_ms > 1000.0
        assert result.slo_violation_rate > 0.9

    def test_warm_reuse_policies_dominate_brigade(self):
        trace = poisson_trace(2.0, 60.0, seed=1)
        brigade = run_policy("brigade", get_mix("light"), trace, seed=3,
                             drain_ms=240_000.0)
        bline = run_policy("bline", get_mix("light"), trace, seed=3)
        # Persisting containers (Fifer's first modification to Brigade)
        # beats destroying them on every axis.
        assert bline.slo_violation_rate < brigade.slo_violation_rate
        assert bline.cold_starts < brigade.cold_starts
        assert bline.median_latency_ms < brigade.median_latency_ms
