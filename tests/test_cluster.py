"""Tests for nodes, placement, energy and cold-start models."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster, NodePlacementPolicy
from repro.cluster.coldstart import ColdStartModel, IMAGE_SIZES_MB
from repro.cluster.energy import EnergyMeter, NodePowerModel
from repro.cluster.node import Node


class TestNode:
    def test_allocate_release(self):
        node = Node(node_id=0, cores=4)
        node.allocate(0.5, 512)
        assert node.allocated_cpu == 0.5
        assert node.container_count == 1
        node.release(0.5, 512, now_ms=100.0)
        assert node.allocated_cpu == 0.0
        assert node.empty
        assert node.idle_since_ms == 100.0

    def test_fits_boundary(self):
        node = Node(node_id=0, cores=1.0, memory_mb=1024)
        assert node.fits(1.0, 1024)
        assert not node.fits(1.5, 512)
        assert not node.fits(0.5, 2048)

    def test_allocate_over_capacity_raises(self):
        node = Node(node_id=0, cores=0.5, memory_mb=512)
        node.allocate(0.5, 512)
        with pytest.raises(RuntimeError):
            node.allocate(0.5, 1)

    def test_release_without_containers_raises(self):
        node = Node(node_id=0)
        with pytest.raises(RuntimeError):
            node.release(0.5, 512, 0.0)

    def test_utilization(self):
        node = Node(node_id=0, cores=16)
        for _ in range(8):
            node.allocate(0.5, 64)
        assert node.cpu_utilization == pytest.approx(0.25)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Node(node_id=0, cores=0)


class TestClusterPlacement:
    def test_pack_prefers_most_loaded_fitting_node(self):
        cluster = Cluster(n_nodes=3, cores_per_node=2, policy=NodePlacementPolicy.PACK)
        first = cluster.place()
        second = cluster.place()
        # Both land on the same node until it is full.
        assert first is second
        # Fill node 0 (4 slots at 0.5 cpu), then spill to node 1.
        cluster.place()
        cluster.place()
        spill = cluster.place()
        assert spill.node_id != first.node_id

    def test_spread_balances(self):
        cluster = Cluster(n_nodes=3, cores_per_node=2, policy=NodePlacementPolicy.SPREAD)
        nodes = [cluster.place().node_id for _ in range(3)]
        assert sorted(nodes) == [0, 1, 2]

    def test_pack_ties_break_to_lowest_id(self):
        cluster = Cluster(n_nodes=2, cores_per_node=2, policy=NodePlacementPolicy.PACK)
        assert cluster.place().node_id == 0

    def test_full_cluster_returns_none_and_counts(self):
        cluster = Cluster(n_nodes=1, cores_per_node=1)
        cluster.place()
        cluster.place()
        assert cluster.place() is None
        assert cluster.placement_failures == 1

    def test_release_enables_reuse(self):
        cluster = Cluster(n_nodes=1, cores_per_node=0.5)
        node = cluster.place()
        assert cluster.place() is None
        cluster.release(node, now_ms=50.0)
        assert cluster.place() is node

    def test_capacity_accounting(self):
        cluster = Cluster(n_nodes=5, cores_per_node=16)
        assert cluster.total_cores == 80
        assert cluster.container_capacity(0.5) == 160

    def test_memory_constraint(self):
        cluster = Cluster(n_nodes=1, cores_per_node=16, memory_per_node_mb=1024)
        assert cluster.place(cpu=0.5, memory_mb=1024) is not None
        assert cluster.place(cpu=0.5, memory_mb=1024) is None

    def test_invalid_cluster(self):
        with pytest.raises(ValueError):
            Cluster(n_nodes=0)


class TestEnergy:
    def test_power_linear_in_utilization(self):
        model = NodePowerModel(idle_w=100.0, peak_w=300.0)
        node = Node(node_id=0, cores=16)
        assert model.node_power_w(node, 0.0) == pytest.approx(100.0)
        for _ in range(16):
            node.allocate(0.5, 64)
        assert model.node_power_w(node, 0.0) == pytest.approx(200.0)

    def test_gating_disabled_by_default(self):
        model = NodePowerModel()
        node = Node(node_id=0)
        node.idle_since_ms = 0.0
        assert model.node_power_w(node, 1e12) == pytest.approx(model.idle_w)

    def test_gating_when_enabled(self):
        model = NodePowerModel(gate_after_ms=1000.0)
        node = Node(node_id=0)
        node.idle_since_ms = 0.0
        assert model.node_power_w(node, 500.0) > 0
        assert model.node_power_w(node, 1500.0) == 0.0

    def test_gated_node_with_container_stays_on(self):
        model = NodePowerModel(gate_after_ms=1000.0)
        node = Node(node_id=0)
        node.allocate(0.5, 64)
        assert model.node_power_w(node, 1e9) > 0

    def test_meter_integrates(self):
        meter = EnergyMeter(model=NodePowerModel(idle_w=100.0, peak_w=100.0),
                            interval_ms=10_000.0)
        nodes = [Node(node_id=0), Node(node_id=1)]
        for t in [0.0, 10_000.0, 20_000.0]:
            meter.sample(nodes, t)
        # 200 W x 3 samples x 10 s = 6000 J.
        assert meter.total_joules == pytest.approx(6000.0)
        assert meter.mean_power_w == pytest.approx(200.0)
        assert meter.total_kwh == pytest.approx(6000.0 / 3.6e6)

    def test_active_node_tracking(self):
        meter = EnergyMeter(model=NodePowerModel(gate_after_ms=0.0))
        on = Node(node_id=0)
        on.allocate(0.5, 64)
        off = Node(node_id=1)
        meter.sample([on, off], 100.0)
        assert meter.mean_active_nodes == pytest.approx(1.0)

    def test_invalid_power_model(self):
        with pytest.raises(ValueError):
            NodePowerModel(idle_w=200.0, peak_w=100.0)


class TestColdStart:
    def test_mean_in_paper_range(self):
        # Section 6.1.5: spawn takes 2 s to 9 s depending on image size.
        model = ColdStartModel()
        means = [model.mean_ms(fn) for fn in IMAGE_SIZES_MB]
        assert min(means) >= 2000.0
        assert max(means) <= 9000.0

    def test_larger_image_takes_longer(self):
        model = ColdStartModel()
        assert model.mean_ms("HS") > model.mean_ms("NLP")

    def test_sample_jitter_positive(self):
        model = ColdStartModel()
        rng = np.random.default_rng(0)
        samples = [model.sample_ms("ASR", rng) for _ in range(100)]
        assert all(s > 0 for s in samples)
        assert np.std(samples) > 0

    def test_no_jitter_without_rng(self):
        model = ColdStartModel()
        assert model.sample_ms("ASR") == model.mean_ms("ASR")

    def test_unknown_function_uses_default(self):
        model = ColdStartModel()
        assert model.mean_ms("SOMETHING") > 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ColdStartModel(bandwidth_mbps=0.0)
