"""Tests for ServerlessSystem internals and edge behaviours."""

import numpy as np
import pytest

from repro.cluster.cluster import NodePlacementPolicy
from repro.core.policies import make_policy_config
from repro.prediction.classical import EWMAPredictor, MovingWindowAveragePredictor
from repro.runtime.system import ClusterSpec, ServerlessSystem
from repro.traces import poisson_trace
from repro.traces.base import ArrivalTrace
from repro.workloads import get_mix


def _system(policy="rscale", mix="heavy", **kwargs):
    return ServerlessSystem(
        config=make_policy_config(policy),
        mix=get_mix(mix),
        **kwargs,
    )


class TestStageShares:
    def test_shares_for_disjoint_mix(self):
        # Heavy mix: IPA and Detect-Fatigue share no functions; every
        # stage belongs to exactly one app with weight 0.5.
        system = _system(mix="heavy")
        assert set(system.stage_shares.values()) == {0.5}

    def test_shares_for_shared_mix(self):
        # Medium mix: NLP and QA appear in both chains -> share 1.0.
        system = _system(mix="medium")
        assert system.stage_shares["NLP"] == pytest.approx(1.0)
        assert system.stage_shares["QA"] == pytest.approx(1.0)
        assert system.stage_shares["ASR"] == pytest.approx(0.5)
        assert system.stage_shares["IMC"] == pytest.approx(0.5)


class TestPredictorResolution:
    def test_none_for_non_proactive(self):
        assert _system("bline").predictor is None
        assert _system("rscale").predictor is None

    def test_auto_ewma_for_bpred(self):
        system = _system("bpred")
        assert isinstance(system.predictor, EWMAPredictor)

    def test_explicit_predictor_wins(self):
        mwa = MovingWindowAveragePredictor()
        system = ServerlessSystem(
            config=make_policy_config("bpred"),
            mix=get_mix("heavy"),
            predictor=mwa,
        )
        assert system.predictor is mwa

    def test_trainable_without_instance_raises(self):
        with pytest.raises(ValueError):
            _system("fifer")


class TestBatchSizes:
    def test_non_batching_policy_uses_b1(self):
        system = _system("bline")
        assert set(system.batch_sizes.values()) == {1}

    def test_batching_policy_uses_slack_sizes(self):
        system = _system("rscale")
        assert max(system.batch_sizes.values()) > 1

    def test_fixed_batch_override(self):
        system = _system("hpa")
        assert set(system.batch_sizes.values()) == {4}

    def test_shared_function_takes_min(self):
        system = _system("rscale", mix="medium")
        # QA appears in both chains; its batch must be the min of both.
        from repro.core.slack import build_stage_plan
        plans = [build_stage_plan(a) for a in get_mix("medium").applications]
        qa_batches = [
            p.stage_batch[p.stage_index_of("QA")] for p in plans
        ]
        assert system.batch_sizes["QA"] == min(qa_batches)


class TestPlacementWiring:
    def test_pack_policy_reaches_cluster(self):
        system = _system("fifer", predictor=EWMAPredictor())
        trace = poisson_trace(5.0, 20.0, seed=1)
        system.run(trace)
        assert system.cluster.policy == NodePlacementPolicy.PACK

    def test_spread_policy_reaches_cluster(self):
        system = _system("bline")
        system.run(poisson_trace(5.0, 20.0, seed=1))
        assert system.cluster.policy == NodePlacementPolicy.SPREAD


class TestEdgeTraces:
    def test_empty_trace(self):
        system = _system("bline")
        result = system.run(ArrivalTrace(np.empty(0), name="empty"))
        assert result.n_jobs == 0
        assert result.slo_violation_rate == 0.0

    def test_single_arrival(self):
        system = _system("bline")
        result = system.run(ArrivalTrace(np.array([100.0]), name="one"))
        assert result.n_jobs == 1
        assert result.n_completed == 1

    def test_monitor_interval_override(self):
        system = ServerlessSystem(
            config=make_policy_config("rscale", monitor_interval_ms=5000.0),
            mix=get_mix("light"),
        )
        result = system.run(poisson_trace(10.0, 30.0, seed=1))
        # Samples every 5 s over >= 30 s -> at least 6 samples.
        assert len(result.sample_times_ms) >= 6

    def test_prewarm_capacity_respects_tiny_cluster(self):
        system = ServerlessSystem(
            config=make_policy_config("sbatch"),
            mix=get_mix("heavy"),
            cluster_spec=ClusterSpec(n_nodes=1, cores_per_node=1.0),
        )
        result = system.run(poisson_trace(5.0, 20.0, seed=1))
        # Static pool wanted more than 2 containers but placement is
        # capped by the cluster; run must not crash.
        assert result.n_jobs > 0


class TestReclaim:
    def test_reclaim_prefers_pool_with_most_idle(self):
        system = _system("bline")
        system.run(poisson_trace(20.0, 30.0, seed=1))
        # After the run every pool has idle containers; reclaim works.
        total_before = sum(p.n_containers for p in system.pools.values())
        assert system._reclaim_idle_capacity() is True
        total_after = sum(p.n_containers for p in system.pools.values())
        assert total_after == total_before - 1

    def test_reclaim_false_when_nothing_idle(self):
        system = _system("bline")
        system.run(ArrivalTrace(np.empty(0), name="empty"))
        for pool in system.pools.values():
            for container in list(pool.containers):
                if container.is_reapable:
                    pool._retire(container)
            pool._compact()
        assert system._reclaim_idle_capacity() is False
