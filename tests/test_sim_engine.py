"""Tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import Event, EventQueue, SimulationError, Simulator
from repro.sim.process import PeriodicProcess


class TestEventQueue:
    def test_pop_orders_by_time(self):
        q = EventQueue()
        fired = []
        for t in [30.0, 10.0, 20.0]:
            q.push(Event(time=t, callback=lambda: None))
        times = [q.pop().time for _ in range(3)]
        assert times == [10.0, 20.0, 30.0]

    def test_same_time_orders_by_priority(self):
        q = EventQueue()
        low = Event(time=5.0, priority=1)
        high = Event(time=5.0, priority=0)
        q.push(low)
        q.push(high)
        assert q.pop() is high
        assert q.pop() is low

    def test_same_time_same_priority_is_fifo(self):
        q = EventQueue()
        first = Event(time=5.0)
        second = Event(time=5.0)
        q.push(first)
        q.push(second)
        assert q.pop() is first
        assert q.pop() is second

    def test_pop_skips_cancelled(self):
        q = EventQueue()
        a = Event(time=1.0)
        b = Event(time=2.0)
        q.push(a)
        q.push(b)
        a.cancel()
        q.notify_cancel()
        assert q.pop() is b

    def test_len_tracks_live_events(self):
        q = EventQueue()
        a = q.push(Event(time=1.0))
        q.push(Event(time=2.0))
        assert len(q) == 2
        a.cancel()
        q.notify_cancel()
        assert len(q) == 1

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        a = q.push(Event(time=1.0))
        q.push(Event(time=2.0))
        a.cancel()
        q.notify_cancel()
        assert q.peek_time() == 2.0

    def test_empty_pop_returns_none(self):
        q = EventQueue()
        assert q.pop() is None
        assert q.peek_time() is None


class TestSimulator:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_and_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append(sim.now))
        sim.schedule(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0, 10.0]

    def test_schedule_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_in_past_raises(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_run_until_advances_clock_to_until(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        final = sim.run(until=100.0)
        assert final == 100.0
        assert sim.now == 100.0

    def test_run_until_does_not_execute_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("early"))
        sim.schedule(50.0, lambda: fired.append("late"))
        sim.run(until=10.0)
        assert fired == ["early"]
        # Later event still pending and fires on the next run.
        sim.run(until=100.0)
        assert fired == ["early", "late"]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(10.0, chain)

        sim.schedule(10.0, chain)
        sim.run()
        assert fired == [10.0, 20.0, 30.0]

    def test_cancel_prevents_execution(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(10.0, lambda: fired.append(1))
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(10.0, lambda: None)
        sim.cancel(event)
        sim.cancel(event)
        assert sim.pending() == 0

    def test_stop_halts_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [(1, None)] or len(fired) == 1

    def test_max_events_limit(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None)
        sim.run(max_events=3)
        assert sim.events_executed == 3

    def test_not_reentrant(self):
        sim = Simulator()
        error = {}

        def recurse():
            try:
                sim.run()
            except SimulationError as exc:
                error["raised"] = exc

        sim.schedule(1.0, recurse)
        sim.run()
        assert "raised" in error

    def test_priority_orders_same_time_callbacks(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append("low"), priority=5)
        sim.schedule(10.0, lambda: fired.append("high"), priority=0)
        sim.run()
        assert fired == ["high", "low"]

    def test_determinism_across_runs(self):
        def build_and_run():
            sim = Simulator()
            order = []
            for i in range(50):
                sim.schedule((i * 7) % 13 + 0.5, lambda i=i: order.append(i))
            sim.run()
            return order

        assert build_and_run() == build_and_run()


class TestPeriodicProcess:
    def test_fires_every_interval(self):
        sim = Simulator()
        ticks = []
        PeriodicProcess(sim, 10.0, lambda now: ticks.append(now))
        sim.run(until=35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_start_after_overrides_first_delay(self):
        sim = Simulator()
        ticks = []
        PeriodicProcess(sim, 10.0, lambda now: ticks.append(now), start_after=2.0)
        sim.run(until=25.0)
        assert ticks == [2.0, 12.0, 22.0]

    def test_stop_prevents_further_ticks(self):
        sim = Simulator()
        ticks = []
        proc = PeriodicProcess(sim, 10.0, lambda now: ticks.append(now))
        sim.schedule(15.0, proc.stop)
        sim.run(until=100.0)
        assert ticks == [10.0]
        assert proc.stopped

    def test_body_can_stop_itself(self):
        sim = Simulator()
        ticks = []
        proc = PeriodicProcess(
            sim, 10.0, lambda now: (ticks.append(now), proc.stop())
        )
        sim.run(until=100.0)
        assert len(ticks) == 1

    def test_invalid_interval_raises(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicProcess(sim, 0.0, lambda now: None)

    def test_tick_count(self):
        sim = Simulator()
        proc = PeriodicProcess(sim, 5.0, lambda now: None)
        sim.run(until=52.0)
        assert proc.ticks == 10
