"""Tests for the state store, statistics helpers and metrics collector."""

import numpy as np
import pytest

from repro.cluster.energy import EnergyMeter, NodePowerModel
from repro.cluster.node import Node
from repro.metrics.collector import MetricsCollector, RunResult
from repro.metrics.stats import (
    cdf_points,
    percentile,
    quantiles,
    sorted_quantiles,
    summarize_latencies,
)
from repro.workflow.job import Job, JobStage
from repro.workflow.statestore import StateStore
from repro.workloads import get_application


class TestStateStore:
    def test_insert_and_get(self):
        store = StateStore()
        store.insert("jobs", 1, {"app": "ipa"})
        assert store.get("jobs", 1) == {"app": "ipa"}
        assert store.get("jobs", 2) is None

    def test_update_merges(self):
        store = StateStore()
        store.insert("jobs", 1, {"a": 1})
        store.update("jobs", 1, {"b": 2})
        assert store.get("jobs", 1) == {"a": 1, "b": 2}

    def test_update_upserts(self):
        store = StateStore()
        store.update("jobs", 9, {"x": 1})
        assert store.get("jobs", 9) == {"x": 1}

    def test_find_by_criteria(self):
        store = StateStore()
        store.insert("jobs", 1, {"app": "ipa", "done": True})
        store.insert("jobs", 2, {"app": "img", "done": True})
        store.insert("jobs", 3, {"app": "ipa", "done": False})
        found = store.find("jobs", app="ipa", done=True)
        assert len(found) == 1

    def test_returns_copies_not_references(self):
        store = StateStore()
        store.insert("jobs", 1, {"a": 1})
        doc = store.get("jobs", 1)
        doc["a"] = 999
        assert store.get("jobs", 1)["a"] == 1

    def test_latency_accounting_within_paper_bound(self):
        # Section 6.1.5: average access latency well within 1.25 ms.
        store = StateStore(seed=1)
        for i in range(500):
            store.insert("jobs", i, {"i": i})
            store.get("jobs", i)
        assert store.reads == 500
        assert store.writes == 500
        assert store.mean_access_latency_ms < 1.25

    def test_count(self):
        store = StateStore()
        store.insert("c", 1, {})
        store.insert("c", 2, {})
        assert store.count("c") == 2
        assert store.count("empty") == 0


class TestStatsHelpers:
    def test_percentile_basic(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0
        assert percentile([], 50) == 0.0

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_summary_keys(self):
        s = summarize_latencies([10.0, 20.0, 30.0])
        assert set(s) == {"mean", "p50", "p95", "p99", "max"}
        assert s["mean"] == pytest.approx(20.0)
        assert s["max"] == 30.0

    def test_summary_empty(self):
        assert summarize_latencies([])["p99"] == 0.0

    def test_cdf_points_truncation(self):
        values = list(range(100))
        cut = cdf_points(values, up_to_percentile=95.0)
        assert len(cut) == 95
        assert cut[-1] <= 95

    def test_percentile_single_sample(self):
        # A lone sample is its own percentile for every q.
        for q in (0.0, 37.0, 50.0, 99.0, 100.0):
            assert percentile([42.0], q) == 42.0

    def test_percentile_bounds_checked_before_empty(self):
        # An out-of-range q is a caller bug regardless of sample size.
        with pytest.raises(ValueError):
            percentile([], 150)

    def test_percentile_ignores_nan(self):
        assert percentile([1.0, float("nan"), 3.0], 50) == 2.0
        assert percentile([float("nan")] * 3, 99) == 0.0

    def test_quantiles_ignore_nan(self):
        got = quantiles([10.0, float("nan"), 20.0], (0.0, 100.0))
        assert list(got) == [10.0, 20.0]
        assert list(quantiles([float("nan")], (50.0,))) == [0.0]

    def test_quantiles_match_percentile_loop(self):
        values = [5.0, 1.0, 9.0, 3.0]
        qs = (0.0, 25.0, 50.0, 99.0, 100.0)
        assert list(quantiles(values, qs)) == [
            percentile(values, q) for q in qs
        ]

    def test_sorted_quantiles_single_and_nan_tail(self):
        assert list(sorted_quantiles(np.array([7.0]), (50.0,))) == [7.0]
        # NaNs sort to the tail; they must not leak into the estimate.
        arr = np.array([1.0, 2.0, 3.0, np.nan])
        got = sorted_quantiles(arr, (50.0, 100.0))
        assert list(got) == [2.0, 3.0]

    def test_sorted_quantiles_match_percentile(self):
        arr = np.sort(np.array([4.0, 8.0, 15.0, 16.0, 23.0, 42.0]))
        qs = (10.0, 50.0, 90.0, 95.0)
        assert list(sorted_quantiles(arr, qs)) == list(
            np.percentile(arr, qs)
        )

    def test_summarize_latencies_drops_nan(self):
        s = summarize_latencies([10.0, float("nan"), 30.0])
        assert s["mean"] == pytest.approx(20.0)
        assert s["max"] == 30.0
        assert summarize_latencies([float("nan")])["p99"] == 0.0

    def test_summarize_latencies_single_sample(self):
        s = summarize_latencies([12.5])
        assert s == {
            "mean": 12.5, "p50": 12.5, "p95": 12.5, "p99": 12.5,
            "max": 12.5,
        }


def _completed_job(arrival, latency, app="ipa"):
    job = Job(app=get_application(app), arrival_ms=arrival)
    job.completion_ms = arrival + latency
    per_stage = latency / job.app.n_stages
    for stage in job.stages:
        stage.enqueue_ms = arrival
        stage.start_ms = arrival + per_stage * 0.4
        stage.end_ms = arrival + per_stage
        stage.exec_ms = per_stage * 0.5
        stage.cold_start_wait_ms = per_stage * 0.1
    return job


class TestJobAccounting:
    def test_response_latency(self):
        job = _completed_job(100.0, 500.0)
        assert job.response_latency_ms == 500.0
        assert not job.violated_slo

    def test_violation_flag(self):
        assert _completed_job(0.0, 1500.0).violated_slo

    def test_uncompleted_latency_raises(self):
        job = Job(app=get_application("ipa"), arrival_ms=0.0)
        with pytest.raises(RuntimeError):
            _ = job.response_latency_ms

    def test_stage_breakdown_sums(self):
        job = _completed_job(0.0, 900.0)
        assert job.total_queue_delay_ms == pytest.approx(
            job.total_cold_start_wait_ms + job.total_batching_wait_ms
        )

    def test_remaining_work_decreases_by_stage(self):
        job = Job(app=get_application("detect-fatigue"), arrival_ms=0.0)
        works = [job.remaining_work_ms(i) for i in range(job.app.n_stages)]
        assert works == sorted(works, reverse=True)
        assert works[-1] > 0

    def test_stage_defaults(self):
        stage = JobStage(function="ASR")
        assert stage.queue_delay_ms == 0.0
        assert stage.batching_wait_ms == 0.0


class TestMetricsCollector:
    def _collector(self):
        meter = EnergyMeter(model=NodePowerModel(), interval_ms=10_000.0)
        return MetricsCollector(meter)

    def test_finalize_empty_run(self):
        collector = self._collector()
        result = collector.finalize("bline", "heavy", "t", 0.0, {})
        assert result.n_jobs == 0
        assert result.slo_violation_rate == 0.0
        assert result.avg_containers == 0.0
        assert result.p99_breakdown()["exec_time"] == 0.0

    def test_violation_rate_counts_incomplete(self):
        collector = self._collector()
        for _ in range(8):
            collector.record_job_created()
        for i in range(6):
            collector.record_job_completed(_completed_job(0.0, 500.0))
        result = collector.finalize("x", "m", "t", 1000.0, {})
        assert result.n_incomplete == 2
        assert result.slo_violation_rate == pytest.approx(2 / 8)

    def test_latency_percentiles(self):
        collector = self._collector()
        for latency in [100.0, 200.0, 300.0, 2000.0]:
            collector.record_job_created()
            collector.record_job_completed(_completed_job(0.0, latency))
        result = collector.finalize("x", "m", "t", 1000.0, {})
        assert result.median_latency_ms == pytest.approx(250.0)
        assert result.violations == 1

    def test_sampling_containers(self):
        collector = self._collector()

        class FakePool:
            n_containers = 3
        nodes = [Node(node_id=0)]
        collector.sample({"ASR": FakePool()}, nodes, 10_000.0)
        collector.sample({"ASR": FakePool()}, nodes, 20_000.0)
        result = collector.finalize("x", "m", "t", 20_000.0, {})
        assert result.avg_containers == pytest.approx(3.0)
        assert result.peak_containers == 3
        assert result.energy_joules > 0

    def test_stage_distribution_normalised(self):
        collector = self._collector()

        class P:
            def __init__(self, n): self.n_containers = n
        pools = {"A": P(3), "B": P(1)}
        collector.sample(pools, [Node(node_id=0)], 10_000.0)
        result = collector.finalize("x", "m", "t", 10_000.0, {})
        dist = result.stage_container_distribution()
        assert dist["A"] == pytest.approx(0.75)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_cumulative_spawn_series(self):
        result = RunResult(
            policy="x", mix="m", trace="t", duration_ms=30_000.0,
            n_jobs=0, n_completed=0, n_incomplete=0,
            latencies_ms=np.array([]), violations=0,
            exec_ms=np.array([]), cold_wait_ms=np.array([]),
            batch_wait_ms=np.array([]), queue_ms=np.array([]),
            sample_times_ms=np.array([]), container_samples={},
            total_spawns=3, spawns_per_pool={"A": 3},
            spawn_times_ms={"A": [1000.0, 15_000.0, 16_000.0]},
            rpc_per_pool={}, failed_spawns=0,
            energy_joules=0.0, mean_power_w=0.0, mean_active_nodes=0.0,
        )
        series = result.cumulative_spawn_series(10_000.0)
        assert list(series) == [1, 3, 3]
        assert result.cold_starts == 3


class TestRegistryReconciliation:
    """RunResult's counters must equal the metrics registry's totals.

    The collector sums per-pool attributes; those attributes are
    property-backed by registry counters, so the two views can only
    diverge if some mutation bypasses the registry — exactly the drift
    these assertions exist to catch.
    """

    def test_collector_counts_match_registry(self):
        meter = EnergyMeter(model=NodePowerModel(), interval_ms=10_000.0)
        collector = MetricsCollector(meter)
        for _ in range(5):
            collector.record_job_created()
        for _ in range(3):
            collector.record_job_completed(_completed_job(0.0, 500.0))
        reg = collector.registry
        assert reg.value("jobs_created_total") == 5
        assert reg.value("jobs_completed_total") == 3
        assert reg.value("jobs_failed_total") == 0
        assert reg.merged_histogram("request_latency_ms").count == 3

    def test_live_run_resilience_counters_reconcile(self):
        from repro.core.policies import make_policy_config
        from repro.serve import (
            FaultConfig,
            RetryPolicy,
            ServeOptions,
            ServingRuntime,
        )
        from repro.traces import poisson_trace
        from repro.workloads import get_mix

        runtime = ServingRuntime(
            config=make_policy_config("rscale", idle_timeout_ms=60_000.0),
            mix=get_mix("light"),
            seed=13,
            options=ServeOptions(
                time_scale=0.005,
                faults=FaultConfig(crash_prob=0.25),
                retry=RetryPolicy(max_attempts=2, base_backoff_ms=5.0),
            ),
        )
        result = runtime.run(poisson_trace(12.0, 4.0, seed=13))
        reg = runtime.registry
        # The chaos settings must actually exercise the retry path.
        assert result.container_crashes > 0
        assert reg.total("pool_task_retries_total") == result.task_retries
        assert reg.total("pool_container_crashes_total") \
            == result.container_crashes
        assert reg.total("pool_task_timeouts_total") == result.task_timeouts
        assert reg.total("pool_tasks_dead_lettered_total") \
            == result.dead_lettered
        assert result.dead_lettered == len(runtime.retry_manager.dlq)
        assert reg.value("retry_dead_lettered_total") \
            == len(runtime.retry_manager.dlq)
        assert reg.value("gateway_dead_lettered_total") == result.n_failed
        assert reg.value("jobs_created_total") == result.n_jobs
        assert reg.value("jobs_completed_total") == result.n_completed
        assert reg.value("jobs_failed_total") == result.n_failed
        assert reg.value("gateway_in_flight") == 0
