"""Unit tests for the observability layer: tracer, registry, exporters.

The histogram's contract — quantiles bounded by their owning bucket,
merge exactly equivalent to observing the concatenated samples, counts
conserved — is property-tested with Hypothesis: these are the invariants
the reconciliation and breakdown machinery leans on.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.collector import RunResult
from repro.obs.export import (
    BREAKDOWN_COMPONENTS,
    latency_breakdown,
    prometheus_snapshot,
    validate_span_dict,
    validate_spans_jsonl,
    write_spans_jsonl,
)
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import Span, Tracer, root_span_id

# ---------------------------------------------------------------------------
# tracer


class TestTracer:
    def test_records_spans(self):
        tracer = Tracer()
        span = tracer.span("request", "job-1", "job-1/request", 0.0, 10.0)
        assert span is not None
        assert span.duration_ms == 10.0
        assert tracer.spans == [span]
        assert tracer.roots() == [span]

    def test_sampling_is_deterministic(self):
        a, b = Tracer(sample_rate=0.5), Tracer(sample_rate=0.5)
        ids = [f"job-{i}" for i in range(200)]
        assert [a.sampled(t) for t in ids] == [b.sampled(t) for t in ids]
        kept = sum(a.sampled(t) for t in ids)
        assert 0 < kept < 200  # neither all nor nothing

    def test_rate_bounds(self):
        assert Tracer(sample_rate=1.0).sampled("job-1")
        assert not Tracer(sample_rate=0.0).sampled("job-1")
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)

    def test_sampled_out_spans_are_counted(self):
        tracer = Tracer(sample_rate=0.0)
        assert tracer.span("request", "job-1", "job-1/request", 0, 1) is None
        assert tracer.spans == []
        assert tracer.dropped == 1

    def test_traces_groups_by_trace_id(self):
        tracer = Tracer()
        tracer.span("request", "job-1", "job-1/request", 0, 5)
        tracer.span("exec", "job-1", "job-1/0/exec", 1, 2,
                    root_span_id("job-1"))
        tracer.span("request", "job-2", "job-2/request", 0, 3)
        grouped = tracer.traces()
        assert set(grouped) == {"job-1", "job-2"}
        assert len(grouped["job-1"]) == 2
        assert len(tracer.spans_named("request")) == 2


# ---------------------------------------------------------------------------
# registry


class TestRegistry:
    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(2.0)
        assert c.value == 3.0
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_counter_set_value_semantics(self):
        c = Counter()
        c.set_value(5.0)   # legacy `attr = n` with n >= current
        c.set_value(0.0)   # reset-to-zero is allowed
        assert c.value == 0.0
        c.set_value(2.0)
        with pytest.raises(ValueError):
            c.set_value(1.0)

    def test_gauge_moves_both_ways(self):
        g = Gauge()
        g.inc()
        g.dec()
        g.set(7.5)
        assert g.value == 7.5

    def test_get_or_create_shares_instances(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x", pool="a") is not reg.counter("x", pool="b")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x", pool="a")

    def test_total_sums_across_labels(self):
        reg = MetricsRegistry()
        reg.counter("retries", pool="a").inc(3)
        reg.counter("retries", pool="b").inc(4)
        assert reg.total("retries") == 7.0
        assert reg.value("retries", pool="a") == 3.0
        assert reg.value("never_registered") == 0.0

    def test_merged_histogram(self):
        reg = MetricsRegistry()
        reg.histogram("lat", pool="a").observe(3.0)
        reg.histogram("lat", pool="b").observe(700.0)
        merged = reg.merged_histogram("lat")
        assert merged.count == 2
        assert merged.sum == 703.0
        assert reg.merged_histogram("missing") is None


# ---------------------------------------------------------------------------
# histogram properties (Hypothesis)

_samples = st.lists(
    st.floats(min_value=0.0, max_value=50_000.0,
              allow_nan=False, allow_infinity=False),
    min_size=0, max_size=200,
)


class TestHistogramProperties:
    @settings(deadline=None)
    @given(samples=_samples.filter(len), q=st.floats(0.0, 1.0))
    def test_quantile_bounded_by_owning_bucket(self, samples, q):
        h = Histogram()
        for s in samples:
            h.observe(s)
        estimate = h.quantile(q)
        # Recompute the owning bucket independently; the estimate must
        # land inside its bounds.
        target = q * h.count
        cumulative = 0
        for i, n in enumerate(h.bucket_counts):
            if n == 0:
                continue
            if cumulative + n >= target:
                lower, upper = h.bucket_bounds(i)
                assert lower <= estimate <= upper + 1e-9
                return
            cumulative += n
        _, upper = h.bucket_bounds(len(h.bucket_counts) - 1)
        assert estimate <= upper + 1e-9

    @settings(deadline=None)
    @given(a=_samples, b=_samples)
    def test_merge_equals_concatenated_samples(self, a, b):
        ha, hb, hc = Histogram(), Histogram(), Histogram()
        for s in a:
            ha.observe(s)
        for s in b:
            hb.observe(s)
        for s in a + b:
            hc.observe(s)
        merged = ha.merge(hb)
        assert merged.bucket_counts == hc.bucket_counts
        assert merged.count == hc.count
        assert math.isclose(merged.sum, hc.sum,
                            rel_tol=1e-9, abs_tol=1e-9)
        assert merged.min == hc.min
        assert merged.max == hc.max

    @settings(deadline=None)
    @given(samples=_samples)
    def test_counts_conserved(self, samples):
        h = Histogram(DEFAULT_LATENCY_BUCKETS_MS)
        for s in samples:
            h.observe(s)
        assert sum(h.bucket_counts) == h.count == len(samples)

    def test_merge_requires_identical_edges(self):
        with pytest.raises(ValueError):
            Histogram((1.0, 2.0)).merge(Histogram((1.0, 3.0)))

    def test_bad_edges_rejected(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((5.0, 5.0))
        with pytest.raises(ValueError):
            Histogram((1.0, float("inf")))


# ---------------------------------------------------------------------------
# exporters


def _span(**overrides):
    base = dict(trace_id="job-1", span_id="job-1/request", name="request",
                start_ms=0.0, end_ms=5.0, parent_id=None)
    base.update(overrides)
    return Span(**base)


class TestSpanSchema:
    def test_valid_roundtrip(self, tmp_path):
        spans = [
            _span(),
            _span(span_id="job-1/0/exec", name="exec", start_ms=1.0,
                  end_ms=2.0, parent_id="job-1/request"),
        ]
        path = write_spans_jsonl(spans, tmp_path / "spans.jsonl")
        assert validate_spans_jsonl(path) == 2

    def test_rejects_unknown_name(self):
        record = _span(name="request").to_dict()
        record["name"] = "mystery"
        with pytest.raises(ValueError, match="unknown span name"):
            validate_span_dict(record)

    def test_rejects_backwards_interval(self):
        record = _span(start_ms=5.0, end_ms=1.0).to_dict()
        with pytest.raises(ValueError, match="ends before"):
            validate_span_dict(record)

    def test_rejects_non_request_root(self):
        record = _span(span_id="job-1/0/exec", name="exec",
                       parent_id=None).to_dict()
        with pytest.raises(ValueError, match="root"):
            validate_span_dict(record)

    def test_rejects_missing_field(self):
        record = _span().to_dict()
        del record["trace_id"]
        with pytest.raises(ValueError, match="missing field"):
            validate_span_dict(record)

    def test_rejects_bad_jsonl(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not JSON"):
            validate_spans_jsonl(path)


class TestPrometheusSnapshot:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total").inc(3)
        reg.gauge("in_flight", pool="a").set(2)
        h = reg.histogram("lat", buckets=(10.0, 100.0))
        h.observe(5.0)
        h.observe(50.0)
        h.observe(5000.0)
        text = prometheus_snapshot(reg)
        assert "# TYPE jobs_total counter" in text
        assert "jobs_total 3" in text
        assert 'in_flight{pool="a"} 2' in text
        # Cumulative le buckets: 1 at <=10, 2 at <=100, 3 at +Inf.
        assert 'lat_bucket{le="10"} 1' in text
        assert 'lat_bucket{le="100"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text


def _result(lat, execm, cold, batch):
    n = len(lat)
    return RunResult(
        policy="x", mix="m", trace="t", duration_ms=1_000.0,
        n_jobs=n, n_completed=n, n_incomplete=0,
        latencies_ms=np.asarray(lat, dtype=float), violations=0,
        exec_ms=np.asarray(execm, dtype=float),
        cold_wait_ms=np.asarray(cold, dtype=float),
        batch_wait_ms=np.asarray(batch, dtype=float),
        queue_ms=np.asarray(batch, dtype=float),
        sample_times_ms=np.asarray([]), container_samples={},
        total_spawns=0, spawns_per_pool={}, spawn_times_ms={},
        rpc_per_pool={}, failed_spawns=0,
        energy_joules=0.0, mean_power_w=0.0, mean_active_nodes=0.0,
    )


class TestLatencyBreakdown:
    def test_components_sum_to_e2e(self):
        result = _result(lat=[100.0, 200.0], execm=[40.0, 60.0],
                         cold=[10.0, 30.0], batch=[5.0, 15.0])
        parts = latency_breakdown(result)
        total = sum(parts[c] for c in BREAKDOWN_COMPONENTS)
        assert math.isclose(total, parts["e2e"], rel_tol=1e-12)
        assert parts["e2e"] == 150.0
        assert parts["exec"] == 50.0

    def test_empty_run(self):
        parts = latency_breakdown(_result([], [], [], []))
        assert parts["e2e"] == 0.0
        assert all(parts[c] == 0.0 for c in BREAKDOWN_COMPONENTS)
