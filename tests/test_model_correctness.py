"""Deeper model-correctness checks: causality, distributions, ordering."""

import numpy as np
import pytest

from repro.cluster.coldstart import ColdStartModel
from repro.core.scheduling import SchedulingPolicy
from repro.prediction.feedforward import SimpleFeedForwardPredictor
from repro.prediction.lstm import LSTMPredictor
from repro.prediction.wavenet import WaveNetPredictor
from repro.sim.engine import Simulator
from repro.cluster.cluster import Cluster
from repro.workflow.job import Job, Task
from repro.workflow.pool import FunctionPool
from repro.workloads import get_application, get_microservice


class TestPredictorCausality:
    """A forecaster must depend only on its lookback window: values
    older than the window cannot change the prediction."""

    @pytest.mark.parametrize("factory", [
        lambda: SimpleFeedForwardPredictor(lookback=8, epochs=5, seed=0),
        lambda: LSTMPredictor(lookback=8, hidden=8, layers=1, epochs=5, seed=0),
        lambda: WaveNetPredictor(lookback=8, dilations=(1, 2, 4), epochs=5,
                                 seed=0),
    ])
    def test_only_lookback_window_matters(self, factory):
        rng = np.random.default_rng(0)
        series = rng.uniform(10.0, 100.0, 80)
        model = factory()
        model.fit(series)
        window = list(rng.uniform(10.0, 100.0, 8))
        history_a = [55.0] * 20 + window
        history_b = [5.0, 95.0] * 10 + window
        assert model.predict(history_a) == pytest.approx(
            model.predict(history_b)
        )


class TestColdStartDistribution:
    def test_jitter_preserves_mean(self):
        model = ColdStartModel(jitter_sigma=0.1)
        rng = np.random.default_rng(0)
        samples = [model.sample_ms("ASR", rng) for _ in range(3000)]
        # Lognormal(0, 0.1) has mean exp(0.005) ~ 1.005.
        assert np.mean(samples) == pytest.approx(
            model.mean_ms("ASR") * np.exp(0.005), rel=0.02
        )

    def test_ordering_follows_image_size(self):
        model = ColdStartModel()
        means = {fn: model.mean_ms(fn) for fn in ("NLP", "FACED", "ASR", "HS")}
        assert means["NLP"] < means["FACED"] < means["ASR"] < means["HS"]


class TestLSFUnderContention:
    def test_shared_pool_serves_tight_chain_first(self):
        """On a shared stage, the chain with less residual slack runs
        first even if it arrived later (section 4.3's scenario)."""
        sim = Simulator()
        cluster = Cluster(n_nodes=1)
        order = []
        pool = FunctionPool(
            sim=sim,
            service=get_microservice("FACED"),
            cluster=cluster,
            batch_size=1,
            stage_slack_ms=300.0,
            stage_response_ms=306.0,
            scheduling=SchedulingPolicy.LSF,
            cold_start=ColdStartModel(jitter_sigma=0.0),
            rng=np.random.default_rng(0),
            on_task_finished=lambda t: order.append(t.job.app.name),
        )
        pool.prewarm(1)
        sim.run(until=1.0)
        # Keep the single container busy so later pushes queue up.
        blocker = Job(app=get_application("face-security"), arrival_ms=1.0)
        pool.enqueue(Task(job=blocker, stage_index=0, enqueue_ms=1.0))
        # The loose job arrived recently; the tight job arrived 400 ms
        # ago and has burned most of its slack in earlier stages.
        loose = Job(app=get_application("face-security"), arrival_ms=400.0)
        tight = Job(app=get_application("detect-fatigue"), arrival_ms=1.0)
        pool.enqueue(Task(job=loose, stage_index=0, enqueue_ms=400.0))
        pool.enqueue(Task(job=tight, stage_index=2, enqueue_ms=400.0))
        sim.run(until=10_000.0)
        assert order[0] == "face-security"  # the blocker
        # The earlier-deadline Detect-Fatigue stage runs next under LSF
        # despite being pushed after the loose face-security task.
        assert order[1] == "detect-fatigue"
        assert order[2] == "face-security"

    def test_fifo_pool_would_not_reorder(self):
        sim = Simulator()
        cluster = Cluster(n_nodes=1)
        order = []
        pool = FunctionPool(
            sim=sim,
            service=get_microservice("FACED"),
            cluster=cluster,
            batch_size=1,
            stage_slack_ms=300.0,
            stage_response_ms=306.0,
            scheduling=SchedulingPolicy.FIFO,
            cold_start=ColdStartModel(jitter_sigma=0.0),
            rng=np.random.default_rng(0),
            on_task_finished=lambda t: order.append(t.job.app.name),
        )
        pool.prewarm(1)
        sim.run(until=1.0)
        blocker = Job(app=get_application("face-security"), arrival_ms=1.0)
        pool.enqueue(Task(job=blocker, stage_index=0, enqueue_ms=1.0))
        loose = Job(app=get_application("face-security"), arrival_ms=400.0)
        tight = Job(app=get_application("detect-fatigue"), arrival_ms=1.0)
        pool.enqueue(Task(job=loose, stage_index=0, enqueue_ms=400.0))
        pool.enqueue(Task(job=tight, stage_index=2, enqueue_ms=400.0))
        sim.run(until=10_000.0)
        # FIFO ignores the tight deadline: insertion order wins.
        assert order == ["face-security", "face-security", "detect-fatigue"]


class TestSimulatorLargeScale:
    def test_hundred_thousand_events_ordered(self):
        sim = Simulator()
        rng = np.random.default_rng(0)
        last = {"t": -1.0}

        def check():
            assert sim.now >= last["t"]
            last["t"] = sim.now

        for t in rng.uniform(0, 1e6, 100_000):
            sim.schedule_at(float(t), check)
        sim.run()
        assert sim.events_executed == 100_000
