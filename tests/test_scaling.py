"""Tests for reactive/proactive scalers and the online sampler."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.coldstart import ColdStartModel
from repro.core.scaling import ProactiveScaler, ReactiveScaler, static_pool_sizes
from repro.core.scheduling import SchedulingPolicy
from repro.prediction.classical import EWMAPredictor
from repro.prediction.windowed import WindowedMaxSampler
from repro.sim.engine import Simulator
from repro.workflow.job import Job, Task
from repro.workflow.pool import FunctionPool
from repro.workloads import get_application, get_microservice


def _pool(sim, batch_size=4, slack=300.0, service="ASR", n_nodes=4):
    cluster = Cluster(n_nodes=n_nodes)
    return FunctionPool(
        sim=sim,
        service=get_microservice(service),
        cluster=cluster,
        batch_size=batch_size,
        stage_slack_ms=slack,
        stage_response_ms=slack + get_microservice(service).mean_exec_ms,
        scheduling=SchedulingPolicy.LSF,
        cold_start=ColdStartModel(jitter_sigma=0.0),
        rng=np.random.default_rng(0),
        on_task_finished=lambda t: None,
    )


def _enqueue_n(pool, n, enqueue_ms=0.0):
    for _ in range(n):
        job = Job(app=get_application("ipa"), arrival_ms=enqueue_ms)
        task = Task(job=job, stage_index=0, enqueue_ms=enqueue_ms)
        pool.enqueue(task)


class TestWindowedMaxSampler:
    def test_series_counts_rates(self):
        s = WindowedMaxSampler(interval_ms=10_000, window_ms=5_000, lookback_ms=20_000)
        # 10 arrivals in the first 5s window of interval 0.
        for i in range(10):
            s.record(i * 100.0)
        series = s.series(20_000.0)
        assert len(series) == 2
        assert series[0] == pytest.approx(2.0)  # 10 arrivals / 5 s
        assert series[1] == 0.0

    def test_out_of_order_rejected(self):
        s = WindowedMaxSampler()
        s.record(100.0)
        with pytest.raises(ValueError):
            s.record(50.0)

    def test_pruning_keeps_lookback(self):
        s = WindowedMaxSampler(lookback_ms=20_000)
        for t in np.arange(0, 100_000, 100.0):
            s.record(t)
        assert len(s._arrivals) <= (20_000 + 10_000) / 100 + 2

    def test_current_rate(self):
        s = WindowedMaxSampler(window_ms=1000.0)
        for t in [9_500.0, 9_600.0, 9_700.0]:
            s.record(t)
        assert s.current_rate(10_000.0) == pytest.approx(3.0)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            WindowedMaxSampler(interval_ms=1000.0, window_ms=5000.0)
        with pytest.raises(ValueError):
            WindowedMaxSampler(lookback_ms=500.0)


class TestReactiveScaler:
    def test_no_scale_when_delay_below_slack(self):
        sim = Simulator()
        pool = _pool(sim)
        scaler = ReactiveScaler({"ASR": pool})
        assert scaler.tick(sim.now) == 0
        assert pool.total_spawns == 0

    def test_bootstrap_from_empty_pool(self):
        sim = Simulator()
        pool = _pool(sim, slack=300.0)
        _enqueue_n(pool, 20)
        sim.run(until=10_000.0)  # queue ages past the slack
        scaler = ReactiveScaler({"ASR": pool})
        spawned = scaler.tick(sim.now)
        assert spawned > 0
        assert pool.total_spawns == spawned
        assert scaler.events and scaler.events[0].kind == "reactive"

    def test_cold_start_gate_blocks_small_backlogs(self):
        sim = Simulator()
        pool = _pool(sim, batch_size=4)
        pool.prewarm(4)  # capacity 16
        sim.run(until=1.0)
        _enqueue_n(pool, 17, enqueue_ms=1.0)
        # Occupied 16, 1 queued; delay factor = 1 * Sr / 16 << cold start.
        assert ReactiveScaler({"ASR": pool}).estimate_containers(pool) == 0

    def test_estimate_bounded_by_paper_formula_and_need(self):
        sim = Simulator()
        pool = _pool(sim, batch_size=4)
        _enqueue_n(pool, 40)
        est = ReactiveScaler({"ASR": pool}).estimate_containers(pool)
        paper_estimate = 10  # ceil((40 - 0) / 4)
        assert 1 <= est <= paper_estimate

    def test_need_cap_prevents_backlog_proportional_storm(self):
        sim = Simulator()
        pool = _pool(sim, batch_size=1, n_nodes=8)
        pool.prewarm(4)
        sim.run(until=1.0)
        _enqueue_n(pool, 200, enqueue_ms=1.0)
        est = ReactiveScaler({"ASR": pool}).estimate_containers(pool)
        # The paper's raw formula would ask for 196 containers; the
        # need cap sizes for draining the backlog within the slack
        # (~ backlog * exec / slack) plus the arrival-rate term instead.
        assert 0 < est < 60
        import math
        drain_need = math.ceil(196 * 46.1 / 300.0)
        assert est <= drain_need + 5

    def test_empty_queue_no_estimate(self):
        sim = Simulator()
        pool = _pool(sim)
        assert ReactiveScaler({"ASR": pool}).estimate_containers(pool) == 0


class TestProactiveScaler:
    def _scaler(self, sim, pool, predictor=None, util=0.8):
        sampler = WindowedMaxSampler()
        return ProactiveScaler(
            pools={"ASR": pool},
            predictor=predictor or EWMAPredictor(),
            sampler=sampler,
            stage_shares={"ASR": 1.0},
            utilization_target=util,
        ), sampler

    def test_spawns_for_forecast_load(self):
        sim = Simulator()
        pool = _pool(sim)
        scaler, sampler = self._scaler(sim, pool)
        # Feed a steady 100 req/s of arrivals into the sampler.
        for t in np.arange(0.0, 100_000.0, 10.0):
            sampler.record(t)
        sim.run(until=100_000.0)
        spawned = scaler.tick(sim.now)
        # 100 rps x 46.1 ms / 0.8 -> ~6 containers.
        assert spawned >= 5
        assert scaler.forecasts[-1] > 50.0
        assert all(e.kind == "proactive" for e in scaler.events)

    def test_no_spawn_when_capacity_sufficient(self):
        sim = Simulator()
        pool = _pool(sim)
        pool.prewarm(10)
        scaler, sampler = self._scaler(sim, pool)
        for t in np.arange(0.0, 10_000.0, 100.0):
            sampler.record(t)
        sim.run(until=10_000.0)
        assert scaler.tick(sim.now) == 0

    def test_zero_history_zero_forecast(self):
        sim = Simulator()
        pool = _pool(sim)
        scaler, _ = self._scaler(sim, pool)
        assert scaler.tick(0.0) == 0

    def test_missing_share_rejected(self):
        sim = Simulator()
        pool = _pool(sim)
        with pytest.raises(ValueError):
            ProactiveScaler(
                pools={"ASR": pool},
                predictor=EWMAPredictor(),
                sampler=WindowedMaxSampler(),
                stage_shares={},
            )

    def test_invalid_horizon(self):
        sim = Simulator()
        pool = _pool(sim)
        with pytest.raises(ValueError):
            ProactiveScaler(
                pools={"ASR": pool},
                predictor=EWMAPredictor(),
                sampler=WindowedMaxSampler(),
                stage_shares={"ASR": 1.0},
                horizon_intervals=0,
            )


class TestStaticPoolSizes:
    def test_sizing_matches_littles_law(self):
        sim = Simulator()
        pool = _pool(sim)  # ASR: 46.1 ms
        sizes = static_pool_sizes(
            {"ASR": pool}, avg_rate_rps=100.0, stage_shares={"ASR": 1.0},
            utilization_target=1.0,
        )
        assert sizes["ASR"] == 5  # ceil(100 * 0.0461)

    def test_minimum_one_container(self):
        sim = Simulator()
        pool = _pool(sim, service="NLP")
        sizes = static_pool_sizes(
            {"NLP": pool}, avg_rate_rps=1.0, stage_shares={"NLP": 1.0},
        )
        assert sizes["NLP"] == 1
