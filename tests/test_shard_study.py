"""The sharded-plane PR's study-level acceptance criteria.

Asserted against a real (quick) run of the flash-crowd study: the
N-shard plane rides out the WITS spike at least as well as the single
gateway, the orchestrator moves capacity toward a starved shard, and
the rebalanced arm drains its backlog into a materially shorter tail.
"""

import pytest

from repro.experiments.shard_study import main, run_shard_study


class TestShardStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_shard_study(quick=True, seed=7)

    def test_structure(self, study):
        assert set(study["arms"]) == {
            "1shard", "2shard_uniform", "skewed_static",
            "skewed_rebalance",
        }
        for arm in ("skewed_static", "skewed_rebalance"):
            assert set(study["arms"][arm]["per_shard"]) == {"0", "1"}

    def test_nshard_slo_no_worse_than_1shard(self, study):
        baseline = study["arms"]["1shard"]["slo_violation_rate"]
        sharded = study["arms"]["2shard_uniform"]["slo_violation_rate"]
        assert sharded <= baseline
        # And strictly better: the spike actually saturates one
        # gateway's scaler but not two.
        assert sharded < baseline

    def test_rebalance_moves_capacity_and_recovers_tail(self, study):
        static = study["arms"]["skewed_static"]
        rebal = study["arms"]["skewed_rebalance"]
        assert rebal["orchestration"]["nodes_moved"] > 0
        assert static["orchestration"]["nodes_moved"] == 0
        assert rebal["p99_latency_ms"] <= 0.75 * static["p99_latency_ms"]
        assert rebal["slo_violation_rate"] \
            <= static["slo_violation_rate"] + 1e-12

    def test_every_verdict_passes(self, study):
        assert all(study["acceptance"].values()), study["acceptance"]

    def test_all_arms_conserve_jobs(self, study):
        jobs = {a["jobs"] for a in study["arms"].values()}
        assert len(jobs) == 1


def test_cli_writes_json_and_exits_zero(tmp_path):
    out = tmp_path / "shard_study.json"
    assert main(["--quick", "--out", str(out)]) == 0
    assert out.exists()
