"""Tests for the knob-sweep harness and the report generator."""

import pytest

from repro.experiments.summary import ReportScale, generate_report
from repro.experiments.sweeps import (
    idle_timeout_sweep,
    max_batch_sweep,
    metric_curve,
    sweep_config_field,
)
from repro.traces import poisson_trace


@pytest.fixture(scope="module")
def tiny_trace():
    return poisson_trace(15.0, 60.0, seed=1)


class TestSweeps:
    def test_sweep_unknown_field(self):
        with pytest.raises(ValueError, match="not an RMConfig field"):
            sweep_config_field("rscale", "warp_factor", [1])

    def test_sweep_empty_values(self):
        with pytest.raises(ValueError, match="at least one value"):
            sweep_config_field("rscale", "max_batch", [])

    def test_sweep_runs_per_value(self, tiny_trace):
        results = sweep_config_field(
            "rscale", "max_batch", [1, 8],
            mix_name="light", trace=tiny_trace, seed=2,
        )
        assert set(results) == {1, 8}
        for r in results.values():
            assert r.n_completed == r.n_jobs

    def test_max_batch_one_degenerates_to_nonbatching(self, tiny_trace):
        results = sweep_config_field(
            "rscale", "max_batch", [1, 16],
            mix_name="light", trace=tiny_trace, seed=2,
        )
        # A cap of 1 forces one request per container: never fewer
        # containers than the batched variant.
        assert results[1].avg_containers >= results[16].avg_containers

    def test_metric_curve_extraction(self, tiny_trace):
        results = sweep_config_field(
            "rscale", "max_batch", [2, 4],
            mix_name="light", trace=tiny_trace, seed=2,
        )
        curve = metric_curve(results, "avg_containers")
        assert [v for v, _ in curve] == [2, 4]
        assert all(isinstance(m, float) for _, m in curve)

    def test_named_sweeps_smoke(self, tiny_trace):
        for sweep in (idle_timeout_sweep, max_batch_sweep):
            results = sweep(
                mix_name="light", trace=tiny_trace, seed=2,
            ) if sweep is not max_batch_sweep else sweep(
                caps=[2, 8], mix_name="light", trace=tiny_trace, seed=2,
            )
            assert len(results) >= 2


class TestReportGenerator:
    def test_quick_report_without_traces(self):
        scale = ReportScale(
            prototype_duration_s=45.0,
            trace_duration_s=60.0,
            predictor_duration_s=600.0,
            mixes=("light",),
        )
        report = generate_report(scale=scale, include_traces=False, seed=2)
        assert report.startswith("# Fifer reproduction")
        assert "Figure 2" in report
        assert "Table 4" in report
        assert "light mix" in report
        assert "Table 6" in report
        assert "wiki" not in report  # traces skipped
        # Every policy row rendered.
        for policy in ("bline", "sbatch", "rscale", "bpred", "fifer"):
            assert policy in report

    def test_scales(self):
        assert ReportScale.quick().prototype_duration_s < \
            ReportScale.full().prototype_duration_s
        assert ReportScale.full().mixes == ("heavy", "medium", "light")
