"""Forecast-health guard: monitor, guarded wrapper, chaos wrapper."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.prediction.classical import EWMAPredictor
from repro.prediction.guarded import (
    DIVERGENCE_APE,
    DivergentPredictor,
    ForecastHealthMonitor,
    GuardedPredictor,
)


class TestForecastHealthMonitor:
    def test_accurate_forecasts_stay_healthy(self):
        m = ForecastHealthMonitor(mape_threshold=0.5)
        for _ in range(20):
            m.record(forecast=10.0, actual=10.5)
        assert m.healthy
        assert not m.fallback_active
        assert m.fallbacks == 0
        assert m.window_mape < 0.1

    def test_persistent_error_trips_fallback_after_hysteresis(self):
        m = ForecastHealthMonitor(mape_threshold=0.5, window=3, hysteresis=2)
        m.record(forecast=100.0, actual=10.0)  # bad #1: not yet
        assert not m.fallback_active
        m.record(forecast=100.0, actual=10.0)  # bad #2: trips
        assert m.fallback_active
        assert m.fallbacks == 1

    def test_recovery_after_healthy_streak(self):
        m = ForecastHealthMonitor(mape_threshold=0.5, window=2, hysteresis=2)
        for _ in range(4):
            m.record(forecast=100.0, actual=10.0)
        assert m.fallback_active
        # Window MAPE must drain below threshold, then hysteresis must
        # agree, before the guard re-arms.
        for _ in range(6):
            m.record(forecast=10.0, actual=10.0)
        assert not m.fallback_active
        assert m.recoveries == 1

    def test_non_finite_forecast_is_instant_divergence(self):
        m = ForecastHealthMonitor(mape_threshold=0.5, hysteresis=1)
        m.record(forecast=float("nan"), actual=10.0)
        assert m.divergences == 1
        assert m.fallback_active

    def test_blowup_beyond_divergence_factor_is_divergence(self):
        m = ForecastHealthMonitor(
            mape_threshold=0.5, hysteresis=1, divergence_factor=20.0)
        m.record(forecast=10.0 * 25.0, actual=10.0)
        assert m.divergences == 1

    def test_record_failure_counts_as_divergence(self):
        m = ForecastHealthMonitor(hysteresis=1)
        m.record_failure()
        assert m.divergences == 1
        assert m.fallback_active

    @pytest.mark.parametrize("kwargs", [
        dict(mape_threshold=0.0),
        dict(mape_threshold=-1.0),
        dict(window=0),
        dict(hysteresis=0),
        dict(divergence_factor=1.0),
    ])
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ForecastHealthMonitor(**kwargs)


class TestHysteresisProperty:
    @given(st.lists(st.booleans(), min_size=1, max_size=120),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=120, deadline=None)
    def test_transitions_at_least_hysteresis_apart(self, bads, hysteresis):
        """The no-flap guarantee: any two state transitions are at
        least ``hysteresis`` evaluations apart, for *any* interleaving
        of healthy and unhealthy windows."""
        # window=1 makes each evaluation's health equal its own APE, so
        # the boolean list drives the monitor state directly.
        m = ForecastHealthMonitor(
            mape_threshold=0.5, window=1, hysteresis=hysteresis)
        transition_evals = []
        state = m.fallback_active
        for i, bad in enumerate(bads):
            m.record(forecast=100.0 if bad else 10.0, actual=10.0)
            if m.fallback_active != state:
                transition_evals.append(i)
                state = m.fallback_active
        for a, b in zip(transition_evals, transition_evals[1:]):
            assert b - a >= hysteresis
        # And a transition needs at least ``hysteresis`` evaluations of
        # evidence before it can happen at all.
        if transition_evals:
            assert transition_evals[0] >= hysteresis - 1
        assert m.fallbacks - m.recoveries in (0, 1)


class TestGuardedPredictor:
    def _guarded(self, **kwargs):
        base = EWMAPredictor().fit([10.0] * 8)
        return GuardedPredictor(base, mape_threshold=0.5, **kwargs)

    def test_transparent_while_healthy(self):
        g = self._guarded()
        path = g.predict_horizon([10.0] * 8, 3)
        assert path.shape == (3,)
        assert np.all(np.isfinite(path))
        assert g.healthy

    def test_observe_scores_pending_forecast(self):
        g = self._guarded(hysteresis=1, window=1)
        g.predict_horizon([10.0] * 8, 1)
        g.observe(10.0)  # accurate
        assert g.monitor.evaluations == 1
        assert g.healthy

    def test_wildly_wrong_forecasts_trigger_fallback(self):
        g = self._guarded(hysteresis=2, window=2)
        for _ in range(4):
            g.predict_horizon([10.0] * 8, 1)
            g.observe(10_000.0)  # actual is 1000x the forecast
        assert g.fallback_active
        assert g.monitor.fallbacks == 1

    def test_non_finite_forecast_raises_and_records(self):
        class NaNPredictor(EWMAPredictor):
            def predict(self, history):
                return float("nan")

        g = GuardedPredictor(NaNPredictor().fit([10.0] * 8),
                             mape_threshold=0.5, hysteresis=1)
        with pytest.raises(ValueError):
            g.predict_horizon([10.0] * 8, 3)
        assert g.monitor.divergences == 1

    def test_raising_base_recorded_and_reraised(self):
        class BrokenPredictor(EWMAPredictor):
            def predict(self, history):
                raise RuntimeError("model fell over")

        g = GuardedPredictor(BrokenPredictor().fit([10.0] * 8),
                             mape_threshold=0.5, hysteresis=1)
        with pytest.raises(RuntimeError):
            g.predict_horizon([10.0] * 8, 3)
        assert g.monitor.divergences == 1
        assert g.fallback_active

    def test_monitor_and_kwargs_are_exclusive(self):
        base = EWMAPredictor()
        with pytest.raises(ValueError):
            GuardedPredictor(base, monitor=ForecastHealthMonitor(),
                             mape_threshold=0.5)

    def test_name_reflects_wrapping(self):
        g = self._guarded()
        assert g.name == "guarded(EWMA)"


class TestDivergentPredictor:
    def _base(self):
        return EWMAPredictor().fit([10.0] * 8)

    def test_honest_until_diverge_tick(self):
        d = DivergentPredictor(self._base(), diverge_after=2, factor=25.0)
        p1 = d.predict_horizon([10.0] * 8, 1)
        p2 = d.predict_horizon([10.0] * 8, 1)
        p3 = d.predict_horizon([10.0] * 8, 1)
        assert p1[0] == pytest.approx(p2[0])
        assert p3[0] == pytest.approx(p1[0] * 25.0)

    def test_nan_mode(self):
        d = DivergentPredictor(self._base(), diverge_after=0, mode="nan")
        d.predict_horizon([10.0] * 8, 1)  # tick 0 counts, already diverged
        path = d.predict_horizon([10.0] * 8, 2)
        assert np.all(np.isnan(path))

    def test_guard_catches_divergence_end_to_end(self):
        """Guarded(Divergent(ewma)): the exact chain the robustness
        study and CI smoke run — the guard must trip."""
        d = DivergentPredictor(self._base(), diverge_after=1, factor=50.0)
        g = GuardedPredictor(d, mape_threshold=0.5, window=2, hysteresis=2)
        for _ in range(6):
            path = g.predict_horizon([10.0] * 8, 1)
            assert np.all(np.isfinite(path))
            g.observe(10.0)  # the world stays at 10 rps
        assert g.fallback_active
        assert g.monitor.divergences > 0

    @pytest.mark.parametrize("kwargs", [
        dict(diverge_after=-1),
        dict(diverge_after=1, factor=0.0),
        dict(diverge_after=1, mode="melt"),
    ])
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DivergentPredictor(EWMAPredictor(), **kwargs)

    def test_divergence_ape_sentinel_is_enormous(self):
        assert DIVERGENCE_APE > 1e6
        assert math.isfinite(DIVERGENCE_APE)
