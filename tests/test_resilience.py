"""Resilience layer: supervised workers, retries, chaos, shedding.

Covers the failure paths of the live serving runtime: crashing and
hanging work functions, retry/backoff/dead-letter semantics, the
control loop's fault containment, the gateway's double-completion
guard, deadline-aware shedding, and the unified chaos injection
(crash probability, registry brownout, worker-group kill) shared with
the simulator's fault models.
"""

import asyncio
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.coldstart import ColdStartModel
from repro.cluster.container import ContainerState
from repro.cluster.energy import EnergyMeter, NodePowerModel
from repro.cluster.faults import fail_node
from repro.core.policies import make_policy_config
from repro.core.scheduling import SchedulingPolicy
from repro.metrics.collector import MetricsCollector
from repro.prediction.windowed import WindowedMaxSampler
from repro.serve import (
    FaultConfig,
    Gateway,
    RetryManager,
    RetryPolicy,
    ScaledClock,
    ServeOptions,
    ServingRuntime,
    WorkerPool,
    serve_trace,
)
from repro.serve.control import ControlLoop
from repro.traces import poisson_trace
from repro.workflow.job import Job, Task
from repro.workloads import get_application, get_microservice, get_mix

FAST = 0.002  # one model second in 2 wall ms


# ---------------------------------------------------------------------------
# helpers


def _worker_pool(clock, executor, retry_manager=None, batch_size=2,
                 n_nodes=4, on_finished=None, **kwargs):
    return WorkerPool(
        clock=clock,
        executor=executor,
        retry_manager=retry_manager,
        service=get_microservice("ASR"),
        cluster=Cluster(n_nodes=n_nodes),
        batch_size=batch_size,
        stage_slack_ms=300.0,
        stage_response_ms=350.0,
        scheduling=SchedulingPolicy.LSF,
        cold_start=ColdStartModel(jitter_sigma=0.0),
        rng=np.random.default_rng(0),
        on_task_finished=on_finished or (lambda t: None),
        **kwargs,
    )


def _metrics():
    return MetricsCollector(EnergyMeter(model=NodePowerModel()))


def _task(clock, app_name="ipa", stage_index=0):
    job = Job(app=get_application(app_name), arrival_ms=clock.now)
    return Task(job=job, stage_index=stage_index, enqueue_ms=clock.now)


class _StubPool:
    """The slice of FunctionPool the retry manager touches."""

    def __init__(self):
        self.task_retries = 0
        self.tasks_dead_lettered = 0
        self.enqueued = []

    def forget_waiting(self, task):
        pass

    def enqueue(self, task):
        self.enqueued.append(task)


# ---------------------------------------------------------------------------
# retry policy (pure logic)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(base_backoff_ms=10.0, backoff_multiplier=3.0,
                             max_backoff_ms=1_000.0, jitter=0.0)
        rng = np.random.default_rng(0)
        assert policy.backoff_ms(1, rng) == 10.0
        assert policy.backoff_ms(2, rng) == 30.0
        assert policy.backoff_ms(3, rng) == 90.0

    def test_backoff_is_capped(self):
        policy = RetryPolicy(base_backoff_ms=100.0, backoff_multiplier=10.0,
                             max_backoff_ms=500.0, jitter=0.0)
        rng = np.random.default_rng(0)
        assert policy.backoff_ms(5, rng) == 500.0

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(base_backoff_ms=100.0, jitter=0.25,
                             backoff_multiplier=1.0)
        rng = np.random.default_rng(1)
        samples = [policy.backoff_ms(1, rng) for _ in range(200)]
        assert all(75.0 <= s <= 125.0 for s in samples)
        assert len(set(samples)) > 1  # actually jittered

    def test_attempt_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows_attempt(2)
        assert not policy.allows_attempt(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_ms=100.0, max_backoff_ms=50.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)


class TestRetryManager:
    def test_exhausted_attempts_dead_letter(self):
        clock = ScaledClock(FAST)
        pool = _StubPool()
        gave_up = []
        manager = RetryManager(
            policy=RetryPolicy(max_attempts=2, base_backoff_ms=0.0, jitter=0.0),
            clock=clock,
            rng=np.random.default_rng(0),
            on_give_up=lambda task, reason: gave_up.append(reason),
        )
        task = _task(clock)
        manager.handle_failure(pool, task, "crash")   # attempt 1 -> retry
        assert pool.enqueued == [task]
        assert pool.task_retries == 1
        manager.handle_failure(pool, task, "crash")   # attempt 2 -> DLQ
        assert pool.tasks_dead_lettered == 1
        assert len(manager.dlq) == 1
        assert gave_up == ["crash:attempts-exhausted"]
        assert manager.dlq.counts_by_reason() == {"crash:attempts-exhausted": 1}

    def test_deadline_budget_skips_hopeless_retry(self):
        # Slack is ~450 model ms for ipa at t=0; a backoff far beyond it
        # (with zero grace) means the deadline is unsalvageable.
        clock = ScaledClock(FAST)
        pool = _StubPool()
        gave_up = []
        manager = RetryManager(
            policy=RetryPolicy(max_attempts=5, base_backoff_ms=50_000.0,
                               max_backoff_ms=50_000.0, jitter=0.0,
                               deadline_grace_ms=0.0),
            clock=clock,
            rng=np.random.default_rng(0),
            on_give_up=lambda task, reason: gave_up.append(reason),
        )
        task = _task(clock)
        manager.handle_failure(pool, task, "timeout")
        assert pool.enqueued == []
        assert gave_up == ["timeout:deadline-exceeded"]
        assert len(manager.dlq) == 1

    def test_no_deadline_check_when_grace_unset(self):
        clock = ScaledClock(FAST)
        pool = _StubPool()
        manager = RetryManager(
            policy=RetryPolicy(max_attempts=5, base_backoff_ms=0.0, jitter=0.0),
            clock=clock,
            rng=np.random.default_rng(0),
            on_give_up=lambda task, reason: pytest.fail("should retry"),
        )
        task = _task(clock)
        manager.handle_failure(pool, task, "crash")
        assert pool.enqueued == [task]

    def test_requeue_resets_dispatch_record(self):
        clock = ScaledClock(FAST)
        pool = _StubPool()
        manager = RetryManager(
            policy=RetryPolicy(base_backoff_ms=0.0, jitter=0.0),
            clock=clock,
            rng=np.random.default_rng(0),
            on_give_up=lambda task, reason: None,
        )
        task = _task(clock)
        task.record.start_ms = 123.0
        task.record.cold_start_wait_ms = 7.0
        manager.handle_failure(pool, task, "crash")
        assert task.record.start_ms == -1.0
        assert task.record.cold_start_wait_ms == 0.0
        assert task.attempts == 1


# ---------------------------------------------------------------------------
# supervised workers


class TestSupervisedWorkers:
    def test_raising_work_fn_crashes_worker_and_retries(self):
        failures = []

        def boom(task, wall_s):
            raise ValueError("handler bug")

        async def scenario():
            clock = ScaledClock(FAST)
            with ThreadPoolExecutor(max_workers=2) as executor:
                pool = _worker_pool(clock, executor, work=boom)
                # No retry manager: failures fall back to a plain requeue.
                pool.retry_manager = None
                clock.start()
                pool.prewarm(1)
                await asyncio.sleep(0.02)
                task = _task(clock)
                pool.enqueue(task)
                for _ in range(200):
                    if pool.container_crashes:
                        break
                    await asyncio.sleep(0.01)
                assert pool.container_crashes >= 1
                assert pool.task_retries >= 1
                assert pool.tasks_completed == 0
                # The crashed slot is dead and compacted away.
                assert all(
                    s.state != ContainerState.CRASHED for s in pool.containers
                )
                await pool.shutdown()

        asyncio.run(scenario())
        del failures

    def test_hung_work_fn_reclaimed_by_timeout(self):
        import threading

        release = threading.Event()

        def hang(task, wall_s):
            release.wait(5.0)  # far beyond any timeout budget

        async def scenario():
            clock = ScaledClock(FAST)
            with ThreadPoolExecutor(max_workers=2) as executor:
                pool = _worker_pool(
                    clock, executor, work=hang, timeout_floor_wall_s=0.05
                )
                clock.start()
                pool.prewarm(1)
                await asyncio.sleep(0.02)
                pool.enqueue(_task(clock))
                for _ in range(400):
                    if pool.task_timeouts:
                        break
                    await asyncio.sleep(0.01)
                assert pool.task_timeouts == 1
                assert pool.container_crashes == 1
                assert pool.task_retries == 1
                await pool.shutdown()
            release.set()

        asyncio.run(scenario())

    def test_supervisor_reaps_dead_runner_and_respawns(self):
        async def scenario():
            clock = ScaledClock(FAST)
            with ThreadPoolExecutor(max_workers=2) as executor:
                pool = _worker_pool(clock, executor)
                clock.start()
                pool.prewarm(1)
                await asyncio.sleep(0.02)
                (slot,) = pool.containers
                free_before = pool.cluster.nodes[slot.node.node_id].free_cpu
                # Kill the runner behind the pool's back: the slot never
                # transitions, so only the supervisor can reclaim it.
                slot.runner.cancel()
                await asyncio.sleep(0.01)
                pool.enqueue(_task(clock))  # backlog justifies a respawn
                respawned = pool.supervise(clock.now)
                assert respawned == 1
                assert pool.container_crashes == 1
                assert slot.state == ContainerState.CRASHED
                assert slot not in pool.containers
                # The dead slot's node allocation was released.
                node = pool.cluster.nodes[slot.node.node_id]
                assert node.free_cpu >= free_before
                await pool.shutdown()

        asyncio.run(scenario())

    def test_supervise_is_idle_noop(self):
        async def scenario():
            clock = ScaledClock(FAST)
            with ThreadPoolExecutor(max_workers=2) as executor:
                pool = _worker_pool(clock, executor)
                clock.start()
                pool.prewarm(2)
                await asyncio.sleep(0.02)
                assert pool.supervise(clock.now) == 0
                assert pool.container_crashes == 0
                assert pool.n_containers == 2
                await pool.shutdown()

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# node kill vs live pool (unified fault model)


class TestFailNodeLive:
    def test_killed_nodes_inflight_task_requeued_exactly_once(self):
        async def scenario():
            clock = ScaledClock(1.0)  # real time: the task stays in flight
            with ThreadPoolExecutor(max_workers=2) as executor:
                pool = _worker_pool(clock, executor, n_nodes=1)
                clock.start()
                pool.prewarm(1)
                await asyncio.sleep(0.05)
                (slot,) = pool.containers
                task = _task(clock)
                pool.enqueue(task)
                for _ in range(100):
                    if slot.current_task is task:
                        break
                    await asyncio.sleep(0.01)
                assert slot.current_task is task  # dispatched, executing
                destroyed = fail_node(slot.node, [pool], clock.now)
                assert destroyed == 1
                assert slot.state == ContainerState.TERMINATED
                # Exactly one queue entry and one counted retry — no
                # duplicates in the queue or the waiting view.
                assert pool.task_retries == 1
                assert pool.queue_length == 1
                assert sum(1 for t in pool._waiting if t is task) == 1
                assert pool.queue.pop() is task
                # The orphaned runner exits without completing the task.
                await asyncio.wait({slot.runner}, timeout=2.0)
                assert slot.runner.done()
                assert pool.tasks_completed == 0
                await pool.shutdown()

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# control loop containment


class _RaisingScaler:
    def __init__(self):
        self.calls = 0

    def tick(self, now_ms):
        self.calls += 1
        raise RuntimeError("scaler bug")


class TestControlLoopContainment:
    def test_raising_scaler_is_contained_and_counted(self):
        async def scenario():
            clock = ScaledClock(FAST)
            clock.start()
            scaler = _RaisingScaler()
            loop = ControlLoop(
                clock=clock,
                pools={},
                cluster=Cluster(n_nodes=1),
                metrics=_metrics(),
                config=make_policy_config("bline"),
                reactive=scaler,
            )
            loop.tick(0.0)
            loop.tick(10_000.0)
            assert scaler.calls == 2      # still invoked every tick
            assert loop.tick_errors == 2  # each failure contained
            assert loop.ticks == 2        # the loop itself never died
            # The sampler still ran despite the broken scaler.
            assert len(loop.metrics.sample_times) == 2

        asyncio.run(scenario())

    def test_raising_scaler_does_not_hang_drain(self, caplog):
        # End to end: a broken reactive scaler must not wedge the run.
        runtime = ServingRuntime(
            config=make_policy_config("rscale", idle_timeout_ms=60_000.0),
            mix=get_mix("light"),
            seed=3,
            options=ServeOptions(time_scale=0.005),
        )

        original_build = runtime._build

        def sabotaged_build(executor):
            original_build(executor)
            runtime.control.reactive = _RaisingScaler()

        runtime._build = sabotaged_build
        result = runtime.run(poisson_trace(10.0, 5.0, seed=3))
        assert runtime.drain_completed
        assert result.n_completed == result.n_jobs
        assert result.tick_errors > 0

    def test_tick_errors_flow_into_summary(self):
        runtime = ServingRuntime(
            config=make_policy_config("bline", idle_timeout_ms=60_000.0),
            mix=get_mix("light"),
            seed=4,
            options=ServeOptions(time_scale=0.005),
        )
        result = runtime.run(poisson_trace(5.0, 4.0, seed=4))
        assert result.tick_errors == 0
        assert "tick_errors" in result.summary()


# ---------------------------------------------------------------------------
# gateway guards


class TestGatewayGuards:
    def test_double_completion_counted_not_applied(self):
        async def scenario():
            clock = ScaledClock(FAST)
            mix = get_mix("light")
            gateway = Gateway(
                clock=clock,
                pools={},
                mix=mix,
                metrics=_metrics(),
                sampler=WindowedMaxSampler(),
                rng=np.random.default_rng(0),
            )
            clock.start()
            app = mix.applications[0]
            job = gateway.admit(app=app)
            assert job is not None and gateway.in_flight == 1
            last = Task(job=job, stage_index=app.n_stages - 1,
                        enqueue_ms=clock.now)
            gateway.on_task_finished(last)
            assert gateway.in_flight == 0
            # A duplicate completion signal must not drive in_flight
            # negative or re-record the job.
            gateway.on_task_finished(last)
            assert gateway.in_flight == 0
            assert gateway.duplicate_completions == 1
            assert len(gateway.metrics.completed_jobs) == 1

        asyncio.run(scenario())

    def test_failure_after_completion_is_duplicate(self):
        async def scenario():
            clock = ScaledClock(FAST)
            mix = get_mix("light")
            gateway = Gateway(
                clock=clock, pools={}, mix=mix, metrics=_metrics(),
                sampler=WindowedMaxSampler(), rng=np.random.default_rng(0),
            )
            clock.start()
            app = mix.applications[0]
            job = gateway.admit(app=app)
            last = Task(job=job, stage_index=app.n_stages - 1,
                        enqueue_ms=clock.now)
            gateway.on_task_finished(last)
            gateway.on_task_failed(last, "crash")
            assert gateway.in_flight == 0
            assert gateway.duplicate_completions == 1
            assert gateway.dead_lettered == 0
            assert job.outcome == "completed"

        asyncio.run(scenario())

    def test_task_failure_terminates_job(self):
        async def scenario():
            clock = ScaledClock(FAST)
            mix = get_mix("light")
            metrics = _metrics()
            gateway = Gateway(
                clock=clock, pools={}, mix=mix, metrics=metrics,
                sampler=WindowedMaxSampler(), rng=np.random.default_rng(0),
            )
            clock.start()
            app = mix.applications[0]
            job = gateway.admit(app=app)
            task = Task(job=job, stage_index=0, enqueue_ms=clock.now)
            gateway.on_task_failed(task, "crash:attempts-exhausted")
            assert gateway.in_flight == 0
            assert gateway.dead_lettered == 1
            assert job.failed and job.terminal
            assert job.outcome == "failed"
            assert job.failure_reason == "crash:attempts-exhausted"
            assert metrics.failed_jobs == [job]

        asyncio.run(scenario())

    def test_deadline_shedding(self):
        class SwampedPool:
            def monitored_delay_ms(self):
                return 1e9

        class IdlePool:
            def monitored_delay_ms(self):
                return 0.0

        async def scenario():
            clock = ScaledClock(FAST)
            mix = get_mix("light")
            app = mix.applications[0]
            first = app.stage_names[0]
            gateway = Gateway(
                clock=clock, pools={first: SwampedPool()}, mix=mix,
                metrics=_metrics(), sampler=WindowedMaxSampler(),
                rng=np.random.default_rng(0), shed_expired=True,
            )
            clock.start()
            assert gateway.admit(app=app) is None
            assert gateway.shed == 1 and gateway.shed_deadline == 1
            # With headroom the same arrival is admitted.
            gateway.pools[first] = IdlePool()
            assert gateway.admit(app=app) is not None
            # Disabled flag: never sheds on deadline.
            gw2 = Gateway(
                clock=clock, pools={first: SwampedPool()}, mix=mix,
                metrics=_metrics(), sampler=WindowedMaxSampler(),
                rng=np.random.default_rng(0), shed_expired=False,
            )
            assert gw2.admit(app=app) is not None
            assert gw2.shed_deadline == 0

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# end to end: chaos runs drain cleanly


class TestChaosEndToEnd:
    def test_raising_work_fn_run_terminates_with_failures(self):
        def boom(task, wall_s):
            raise RuntimeError("every handler is broken")

        trace = poisson_trace(8.0, 5.0, seed=7)
        runtime = ServingRuntime(
            config=make_policy_config("rscale", idle_timeout_ms=60_000.0),
            mix=get_mix("light"),
            seed=7,
            options=ServeOptions(
                time_scale=0.005,
                retry=RetryPolicy(max_attempts=2, base_backoff_ms=10.0),
            ),
            work=boom,
        )
        result = runtime.run(trace)
        # Nothing can ever complete, yet the run drains: every admitted
        # job terminates as failed via the dead-letter queue.
        assert runtime.drain_completed
        assert runtime.gateway.in_flight == 0
        assert result.n_completed == 0
        assert result.n_failed == result.n_jobs
        assert result.dead_lettered == result.n_jobs
        assert result.task_retries > 0
        assert result.container_crashes > 0
        assert len(runtime.dead_letters) == result.n_jobs
        # Failed jobs count against the SLO rate (they are incomplete).
        assert result.slo_violation_rate == 1.0

    def test_crash_prob_run_drains_cleanly(self):
        trace = poisson_trace(15.0, 8.0, seed=8)
        runtime = ServingRuntime(
            config=make_policy_config("rscale", idle_timeout_ms=60_000.0),
            mix=get_mix("light"),
            seed=8,
            options=ServeOptions(
                time_scale=0.005,
                faults=FaultConfig(crash_prob=0.2),
                retry=RetryPolicy(max_attempts=5, base_backoff_ms=10.0),
                drain_timeout_ms=1_200_000.0,
            ),
        )
        result = runtime.run(trace)
        assert runtime.drain_completed
        assert runtime.gateway.in_flight == 0
        # Every admitted job is in exactly one terminal state.
        assert result.n_completed + result.n_failed == result.n_jobs
        assert result.container_crashes > 0
        assert result.task_retries > 0
        # Most work survives retries at this crash rate.
        assert result.n_completed > 0

    def test_hang_prob_run_recovered_by_timeout(self):
        trace = poisson_trace(2.0, 2.0, seed=9)
        runtime = ServingRuntime(
            config=make_policy_config("rscale", idle_timeout_ms=60_000.0),
            mix=get_mix("light"),
            seed=9,
            options=ServeOptions(
                time_scale=0.005,
                faults=FaultConfig(hang_prob=1.0),
                retry=RetryPolicy(max_attempts=2, base_backoff_ms=10.0),
                timeout_floor_wall_s=0.05,
                drain_timeout_ms=1_200_000.0,
            ),
        )
        result = runtime.run(trace)
        assert runtime.drain_completed
        assert runtime.gateway.in_flight == 0
        # Every execution hangs; the timeout reclaims each attempt and
        # the attempt budget dead-letters every job.
        assert result.task_timeouts > 0
        assert result.n_failed == result.n_jobs
        assert result.n_completed == 0

    def test_registry_brownout_inflates_and_counts(self):
        from repro.serve import ChaosInjector

        chaos = ChaosInjector(FaultConfig(
            brownout_start_ms=0.0, brownout_end_ms=5_000.0,
            brownout_factor=3.0,
        ))
        clock = ScaledClock(FAST)  # unstarted: now == 0, inside the window
        base = ColdStartModel(jitter_sigma=0.0)
        wrapped = chaos.wrap_cold_start(base, clock)
        rng = np.random.default_rng(0)
        degraded = wrapped.sample_ms("ASR", rng)
        assert degraded == pytest.approx(base.sample_ms("ASR", rng) * 3.0)
        assert chaos.degraded_spawns == 1

    def test_registry_brownout_counted_end_to_end(self):
        from repro.traces import step_poisson_trace

        # bline spawns on demand whenever backlog exceeds capacity, so a
        # step trace guarantees cold starts inside the brownout window.
        trace = step_poisson_trace(10.0, 8.0, seed=10)
        runtime = ServingRuntime(
            config=make_policy_config("bline", idle_timeout_ms=60_000.0),
            mix=get_mix("light"),
            seed=10,
            options=ServeOptions(
                time_scale=0.005,
                faults=FaultConfig(
                    brownout_start_ms=0.0,
                    brownout_end_ms=600_000.0,
                    brownout_factor=1.5,
                ),
                drain_timeout_ms=1_200_000.0,
            ),
        )
        result = runtime.run(trace)
        assert runtime.drain_completed
        assert result.degraded_spawns > 0
        assert result.degraded_spawns == runtime.chaos.degraded_spawns

    def test_worker_group_kill_recovers(self):
        trace = poisson_trace(15.0, 10.0, seed=11)
        runtime = ServingRuntime(
            config=make_policy_config("rscale", idle_timeout_ms=60_000.0),
            mix=get_mix("light"),
            seed=11,
            options=ServeOptions(
                time_scale=0.005,
                faults=FaultConfig(kill_workers_at_ms=4_000.0),
                retry=RetryPolicy(max_attempts=5, base_backoff_ms=10.0),
                drain_timeout_ms=1_200_000.0,
            ),
        )
        result = runtime.run(trace)
        assert runtime.chaos.workers_killed >= 1
        assert runtime.chaos.nodes_failed == 1
        assert runtime.drain_completed
        assert runtime.gateway.in_flight == 0
        assert result.n_completed + result.n_failed == result.n_jobs

    def test_resilience_counters_exported(self):
        from repro.experiments.export import summary_record
        from repro.experiments.report import RESILIENCE_HEADERS, resilience_rows

        trace = poisson_trace(10.0, 5.0, seed=12)
        result = serve_trace(
            "rscale", get_mix("light"), trace, seed=12,
            options=ServeOptions(
                time_scale=0.005, faults=FaultConfig(crash_prob=0.3),
                retry=RetryPolicy(max_attempts=5, base_backoff_ms=10.0),
                drain_timeout_ms=1_200_000.0,
            ),
            idle_timeout_ms=60_000.0,
        )
        record = summary_record(result, mode="live")
        for key in ("failed", "task_retries", "container_crashes",
                    "task_timeouts", "dead_lettered", "tick_errors",
                    "degraded_spawns", "shed_jobs"):
            assert key in record
        assert record["container_crashes"] > 0
        rows = resilience_rows({"rscale": result})
        assert len(rows) == 1 and len(rows[0]) == len(RESILIENCE_HEADERS)
