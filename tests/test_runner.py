"""Experiment-runner tests: config hashing, seed derivation, disk-cache
replay, and the serial == parallel determinism contract."""

import json

import pytest

from repro.experiments.runner import (
    CACHE_FORMAT_VERSION,
    ExperimentRunner,
    TrialSpec,
    config_hash,
    derive_seeds,
    repeat_specs,
    run_trial,
    summaries_json,
    sweep_specs,
)

#: Small enough to keep the suite fast, big enough to exercise jobs.
TINY = dict(mix="heavy", trace_kind="poisson", rate_rps=15.0,
            duration_s=20.0, nodes=2)


def tiny_specs(n=2, policy="bline"):
    return repeat_specs(policy, base_seed=42, repeats=n, **TINY)


class TestSpecAndHash:
    def test_hash_is_stable_across_processes_and_order(self):
        a = TrialSpec.make("rscale", seed=1,
                           overrides=(("max_batch", 4), ("alpha", 2.0)))
        b = TrialSpec.make("rscale", seed=1,
                           overrides=(("alpha", 2.0), ("max_batch", 4)))
        assert a == b
        assert config_hash(a) == config_hash(b)

    def test_hash_distinguishes_every_field(self):
        base = TrialSpec.make("rscale", **TINY)
        variants = [
            TrialSpec.make("bline", **TINY),
            TrialSpec.make("rscale", **{**TINY, "rate_rps": 16.0}),
            TrialSpec.make("rscale", **{**TINY, "nodes": 3}),
            TrialSpec.make("rscale", seed=6, **TINY),
            TrialSpec.make("rscale", overrides=(("max_batch", 2),), **TINY),
        ]
        hashes = {config_hash(s) for s in [base] + variants}
        assert len(hashes) == len(variants) + 1

    def test_make_folds_unknown_kwargs_into_overrides(self):
        spec = TrialSpec.make("rscale", seed=2, max_batch=8)
        assert spec.overrides == (("max_batch", 8),)

    def test_canonical_round_trips_through_json(self):
        spec = TrialSpec.make("rscale", **TINY)
        assert json.loads(json.dumps(spec.canonical())) == spec.canonical()

    def test_hash_includes_fault_and_guardrail_config(self):
        """Regression: two trials differing only in injected faults or
        guard knobs must never share a cache entry."""
        base = TrialSpec.make("rscale", **TINY)
        variants = [
            TrialSpec.make("rscale",
                           faults=(("crash_probability", 0.1),), **TINY),
            TrialSpec.make("rscale",
                           faults=(("diverge_after", 3),), **TINY),
            TrialSpec.make(
                "rscale",
                faults=(("node_fault_schedule", "kill@30=0"),), **TINY),
            TrialSpec.make("rscale", shed_expired=True, **TINY),
            TrialSpec.make("rscale", mape_threshold=0.5, **TINY),
            TrialSpec.make("rscale", max_surge=8, **TINY),
            TrialSpec.make("rscale", spawn_retry_attempts=2, **TINY),
        ]
        hashes = {config_hash(s) for s in [base] + variants}
        assert len(hashes) == len(variants) + 1

    def test_fault_order_does_not_change_the_hash(self):
        a = TrialSpec.make(
            "rscale",
            faults=(("diverge_after", 3), ("crash_probability", 0.1)),
            **TINY)
        b = TrialSpec.make(
            "rscale",
            faults=(("crash_probability", 0.1), ("diverge_after", 3)),
            **TINY)
        assert config_hash(a) == config_hash(b)


class TestDeriveSeeds:
    def test_deterministic_and_prefix_stable(self):
        assert derive_seeds(9, 4) == derive_seeds(9, 4)
        assert derive_seeds(9, 2) == derive_seeds(9, 4)[:2]

    def test_distinct_bases_distinct_seeds(self):
        assert derive_seeds(1, 3) != derive_seeds(2, 3)
        assert len(set(derive_seeds(1, 16))) == 16

    def test_rejects_negative_n(self):
        with pytest.raises(ValueError):
            derive_seeds(1, -1)


class TestRunnerDeterminism:
    def test_parallel_matches_serial_byte_for_byte(self):
        specs = tiny_specs(3)
        serial = ExperimentRunner(workers=1).run(specs)
        parallel = ExperimentRunner(workers=2).run(specs)
        assert summaries_json(serial) == summaries_json(parallel)
        # Order follows input order, not completion order.
        assert [r.spec.seed for r in parallel] == [s.seed for s in specs]

    def test_cache_replay_equals_cold_run(self, tmp_path):
        specs = tiny_specs(2)
        cold = ExperimentRunner(workers=1, cache_dir=tmp_path)
        cold_results = cold.run(specs)
        assert (cold.cache_hits, cold.cache_misses) == (0, 2)
        warm = ExperimentRunner(workers=1, cache_dir=tmp_path)
        warm_results = warm.run(specs)
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)
        assert all(r.from_cache for r in warm_results)
        assert summaries_json(warm_results) == summaries_json(cold_results)

    def test_run_trial_matches_runner_summary(self):
        spec = tiny_specs(1)[0]
        assert run_trial(spec) == ExperimentRunner().run([spec])[0].summary


class TestParallelRegression:
    """The chunked pool path: same bytes as serial, in input order."""

    def _eight_specs(self):
        # >= 8 distinct uncached trials across two policies, so the
        # round-robin chunks interleave different workloads.
        return (
            repeat_specs("bline", base_seed=19, repeats=4, **TINY)
            + repeat_specs("rscale", base_seed=23, repeats=4, **TINY)
        )

    def test_workers4_bit_identical_to_serial_in_input_order(self):
        specs = self._eight_specs()
        assert len(specs) >= 8
        serial = ExperimentRunner(workers=1).run(specs)
        parallel = ExperimentRunner(workers=4).run(specs)
        assert [r.spec for r in parallel] == specs
        assert summaries_json(serial) == summaries_json(parallel)
        assert all(not r.from_cache for r in parallel)
        assert all(r.wall_s > 0.0 for r in parallel)

    def test_parallel_path_still_writes_cache(self, tmp_path):
        specs = self._eight_specs()
        runner = ExperimentRunner(workers=4, cache_dir=tmp_path)
        runner.run(specs)
        assert runner.cache_misses == len(specs)
        replay = ExperimentRunner(workers=4, cache_dir=tmp_path)
        replay.run(specs)
        assert replay.cache_hits == len(specs)

    def test_engine_field_is_not_part_of_the_cache_key(self):
        base = TrialSpec.make("rscale", **TINY)
        vector = TrialSpec.make("rscale", engine="vector", **TINY)
        assert vector.engine == "vector"
        assert config_hash(base) == config_hash(vector)
        assert "engine" not in base.canonical()

    def test_engine_cache_sharing_is_sound(self):
        # Sharing cache entries across engines is only valid because
        # the summaries are bit-identical; check it end to end.
        base = TrialSpec.make("rscale", **TINY)
        vector = TrialSpec.make("rscale", engine="vector", **TINY)
        assert run_trial(base) == run_trial(vector)


class TestCacheEdgeCases:
    def test_no_cache_flag_ignores_but_still_writes(self, tmp_path):
        specs = tiny_specs(1)
        ExperimentRunner(workers=1, cache_dir=tmp_path).run(specs)
        runner = ExperimentRunner(
            workers=1, cache_dir=tmp_path, use_cache=False
        )
        runner.run(specs)
        assert runner.cache_hits == 0 and runner.cache_misses == 1

    def test_corrupt_entry_falls_back_to_execution(self, tmp_path):
        specs = tiny_specs(1)
        runner = ExperimentRunner(workers=1, cache_dir=tmp_path)
        results = runner.run(specs)
        path = tmp_path / f"{results[0].key}.json"
        path.write_text("{not json")
        rerun = ExperimentRunner(workers=1, cache_dir=tmp_path)
        rerun_results = rerun.run(specs)
        assert rerun.cache_misses == 1
        assert rerun_results[0].summary == results[0].summary

    def test_version_bump_invalidates_entries(self, tmp_path):
        specs = tiny_specs(1)
        runner = ExperimentRunner(workers=1, cache_dir=tmp_path)
        results = runner.run(specs)
        path = tmp_path / f"{results[0].key}.json"
        payload = json.loads(path.read_text())
        payload["version"] = CACHE_FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        rerun = ExperimentRunner(workers=1, cache_dir=tmp_path)
        rerun.run(specs)
        assert rerun.cache_hits == 0

    def test_mixed_hit_miss_batch_keeps_input_order(self, tmp_path):
        specs = tiny_specs(3)
        ExperimentRunner(workers=1, cache_dir=tmp_path).run(specs[:1])
        runner = ExperimentRunner(workers=1, cache_dir=tmp_path)
        results = runner.run(specs)
        assert (runner.cache_hits, runner.cache_misses) == (1, 2)
        assert [r.spec.seed for r in results] == [s.seed for s in specs]
        assert [r.from_cache for r in results] == [True, False, False]


class TestSpecFactories:
    def test_repeat_specs_vary_only_the_seed(self):
        specs = tiny_specs(3)
        assert len({s.seed for s in specs}) == 3
        assert len({(s.policy, s.mix, s.rate_rps) for s in specs}) == 1

    def test_repeat_specs_accepts_explicit_seeds(self):
        specs = repeat_specs("bline", seeds=[7, 8], **TINY)
        assert [s.seed for s in specs] == [7, 8]

    def test_repeat_specs_requires_some_seed_source(self):
        with pytest.raises(ValueError):
            repeat_specs("bline", **TINY)

    def test_sweep_specs_vary_only_the_field(self):
        specs = sweep_specs("rscale", "max_batch", [1, 8], seed=5, **TINY)
        assert [dict(s.overrides)["max_batch"] for s in specs] == [1, 8]
        assert len({s.seed for s in specs}) == 1


class TestHighLevelEntrypoints:
    def test_repeated_summaries_and_aggregate(self, tmp_path):
        from repro.experiments.repeats import (
            aggregate_summaries, repeated_summaries,
        )

        summaries = repeated_summaries(
            "bline", base_seed=42, repeats=2, trace_kind="poisson",
            rate_rps=15.0, duration_s=20.0, nodes=2, cache_dir=tmp_path,
        )
        assert len(summaries) == 2
        stats = aggregate_summaries(summaries, ["slo_violation_rate"])
        assert stats["slo_violation_rate"].n == 2

    def test_sweep_parallel_and_metric_curve(self, tmp_path):
        from repro.experiments.sweeps import (
            metric_curve, sweep_config_field_parallel,
        )

        curves = sweep_config_field_parallel(
            "rscale", "max_batch", [1, 8], trace_kind="poisson",
            rate_rps=15.0, duration_s=20.0, nodes=2, cache_dir=tmp_path,
        )
        rows = metric_curve(curves, "avg_containers")
        assert [v for v, _ in rows] == [1, 8]
        assert all(isinstance(m, float) for _, m in rows)

    def test_sweep_parallel_validates_field(self):
        from repro.experiments.sweeps import sweep_config_field_parallel

        with pytest.raises(ValueError):
            sweep_config_field_parallel("rscale", "not_a_field", [1])


class TestCli:
    def test_run_repeats_with_cache(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["run", "bline", "--trace", "poisson", "--rate", "15",
                "--duration", "20", "--nodes", "2", "--repeats", "2",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "aggregate over 2 seeds" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "2 hit(s)" in warm

    def test_sweep_command(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["sweep", "rscale", "--field", "max_batch",
                     "--values", "1", "4", "--trace", "poisson",
                     "--rate", "15", "--duration", "20", "--nodes", "2",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "sweep max_batch" in out


class TestTraceCachePriming:
    """The spawn-start-method fallback for trace-cache priming."""

    def test_prime_builds_each_distinct_trace_once(self):
        from repro.traces.factory import _TRACE_CACHE, prime_trace_cache

        _TRACE_CACHE.clear()
        n = prime_trace_cache([
            ("poisson", 15.0, 20.0, 1),
            ("poisson", 15.0, 20.0, 1),   # duplicate key
            ("poisson", 15.0, 20.0, 2),
        ])
        assert n == 2
        assert ("poisson", 15.0, 20.0, 1) in _TRACE_CACHE
        assert ("poisson", 15.0, 20.0, 2) in _TRACE_CACHE

    def test_pool_inherits_memory_matches_default_context(self):
        import multiprocessing as mp

        from repro.traces.factory import pool_inherits_memory

        expected = mp.get_context().get_start_method() == "fork"
        assert pool_inherits_memory() is expected

    def test_spawn_worker_is_primed_by_initializer(self):
        """Regression: spawn workers used to start with an empty cache
        and silently rebuild every trace; the pool initializer must
        prime each worker process."""
        import os
        import subprocess
        import sys
        import textwrap

        script = textwrap.dedent("""
            import multiprocessing as mp
            from concurrent.futures import ProcessPoolExecutor

            from repro.traces.factory import trace_cache_initializer
            from probe_trace_cache import probe

            if __name__ == "__main__":
                keys = [("poisson", 15.0, 20.0, 7)]
                ctx = mp.get_context("spawn")
                with ProcessPoolExecutor(
                    max_workers=1, mp_context=ctx,
                    initializer=trace_cache_initializer,
                    initargs=(keys,),
                ) as ex:
                    assert ex.submit(probe, keys[0]).result(), \\
                        "spawn worker cache not primed"
                print("PRIMED")
        """)
        probe_module = textwrap.dedent("""
            def probe(key):
                import repro.traces.factory as factory
                return tuple(key) in factory._TRACE_CACHE
        """)
        import tempfile

        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        with tempfile.TemporaryDirectory() as tmp:
            main_py = os.path.join(tmp, "main.py")
            with open(main_py, "w") as fh:
                fh.write(script)
            with open(os.path.join(tmp, "probe_trace_cache.py"), "w") as fh:
                fh.write(probe_module)
            out = subprocess.run(
                [sys.executable, main_py], capture_output=True,
                text=True,
                env=dict(os.environ,
                         PYTHONPATH=os.pathsep.join([src, tmp])),
            )
        assert out.returncode == 0, out.stderr
        assert "PRIMED" in out.stdout

    def test_parallel_runner_still_deterministic_with_initializer(
            self, tmp_path):
        specs = tiny_specs(3)
        serial = ExperimentRunner(workers=1, cache_dir=None).run(specs)
        parallel = ExperimentRunner(workers=2, cache_dir=None).run(specs)
        assert summaries_json(serial) == summaries_json(parallel)
