#!/usr/bin/env python3
"""Failure injection: crashes, node loss and registry brownouts.

Production serverless platforms lose containers and nodes; this example
injects the three fault models of :mod:`repro.cluster.faults` into a
running system and shows the resource manager absorbing them — tasks
retried, capacity re-provisioned, no lost jobs.

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro.cluster.faults import ContainerFaultModel, fail_node
from repro.core.policies import make_policy_config
from repro.experiments import format_table
from repro.runtime.system import ClusterSpec, ServerlessSystem
from repro.traces import poisson_trace
from repro.workloads import get_mix


def run_with_crashes(crash_probability: float, seed: int = 3):
    """An rscale run where containers crash mid-execution."""
    system = ServerlessSystem(
        config=make_policy_config("rscale", idle_timeout_ms=60_000.0),
        mix=get_mix("heavy"),
        cluster_spec=ClusterSpec(n_nodes=5),
        seed=seed,
    )
    trace = poisson_trace(30.0, 120.0, seed=seed)
    # Inject the fault model into every pool before the run executes:
    # the build happens inside run(), so hook the arrival of t=0.
    original_build = system._build

    def build_with_faults(sim):
        original_build(sim)
        fault = ContainerFaultModel(crash_probability=crash_probability)
        for pool in system.pools.values():
            pool.fault_model = fault

    system._build = build_with_faults
    result = system.run(trace)
    crashes = sum(p.container_crashes for p in system.pools.values())
    return result, crashes


def run_with_node_failure(seed: int = 3):
    """Kill a node mid-run; the RM re-provisions and finishes the work."""
    system = ServerlessSystem(
        config=make_policy_config("rscale", idle_timeout_ms=60_000.0),
        mix=get_mix("heavy"),
        cluster_spec=ClusterSpec(n_nodes=5),
        seed=seed,
    )
    trace = poisson_trace(30.0, 120.0, seed=seed)
    original_build = system._build
    killed = {}

    def build_with_failure(sim):
        original_build(sim)

        def kill():
            node = system.cluster.nodes[0]
            killed["destroyed"] = fail_node(
                node, list(system.pools.values()), sim.now
            )

        sim.schedule(60_000.0, kill)  # node dies mid-run

    system._build = build_with_failure
    result = system.run(trace)
    return result, killed.get("destroyed", 0)


def main() -> None:
    rows = []
    baseline, _ = run_with_crashes(0.0)
    rows.append(("healthy", baseline.n_jobs, baseline.n_completed, 0,
                 f"{baseline.slo_violation_rate:.2%}"))

    for p in (0.02, 0.10):
        result, crashes = run_with_crashes(p)
        rows.append((f"{p:.0%} crash rate", result.n_jobs,
                     result.n_completed, crashes,
                     f"{result.slo_violation_rate:.2%}"))

    result, destroyed = run_with_node_failure()
    rows.append((f"node failure ({destroyed} containers lost)",
                 result.n_jobs, result.n_completed, destroyed,
                 f"{result.slo_violation_rate:.2%}"))

    print(format_table(
        ["scenario", "jobs", "completed", "containers lost", "SLO viol"],
        rows,
        title="Failure injection on the rscale resource manager:",
    ))
    print(
        "\nEvery scenario completes all jobs: crashed/killed containers "
        "release their\nnode capacity, their tasks re-enter the stage "
        "queues, and the reactive scaler\nre-provisions. Violations rise "
        "with fault pressure — lost work burns slack."
    )


if __name__ == "__main__":
    main()
