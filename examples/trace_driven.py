#!/usr/bin/env python3
"""Trace-driven simulation: Wiki-like vs WITS-like arrival patterns.

Reproduces the structure of the paper's large-scale simulations
(Figures 13/14/16): the diurnal Wikipedia trace rewards Fifer's LSTM
(predictable swings can be pre-provisioned), while the flash-crowd WITS
trace stresses every reactive policy with cold-start storms.

Rates and cluster are scaled 1/10 from the paper (see DESIGN.md); the
shapes — who wins, by roughly what factor — are preserved.

Run:  python examples/trace_driven.py [--trace wiki|wits|both]
"""

import argparse

from repro.experiments import format_table, normalize, run_trace_simulation


def run_one(kind: str, duration_s: float) -> None:
    print(f"\n=== {kind.upper()} trace, heavy mix "
          f"({duration_s:.0f}s at 1/10 of the paper's rates) ===")
    results = run_trace_simulation(kind, "heavy", duration_s=duration_s)
    containers = normalize(
        {p: r.avg_containers for p, r in results.items()}, "fifer"
    )
    rows = []
    for policy, r in results.items():
        rows.append((
            policy,
            f"{r.slo_violation_rate:.3%}",
            f"{r.avg_containers:.1f}",
            f"{containers[policy]:.1f}x",
            r.cold_starts,
            f"{r.median_latency_ms:.0f}",
            f"{r.p99_latency_ms:.0f}",
        ))
    print(format_table(
        ["policy", "SLO viol", "avg containers", "vs fifer",
         "cold starts", "median(ms)", "P99(ms)"],
        rows,
    ))
    fifer, rscale = results["fifer"], results["rscale"]
    bpred = results["bpred"]
    if fifer.cold_starts:
        print(f"fifer cold starts: {bpred.cold_starts / max(fifer.cold_starts, 1):.1f}x "
              f"fewer than bpred, "
              f"{rscale.cold_starts / max(fifer.cold_starts, 1):.1f}x fewer than rscale")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", choices=["wiki", "wits", "both"],
                        default="both")
    parser.add_argument("--duration", type=float, default=600.0,
                        help="trace length in seconds (default 600)")
    args = parser.parse_args()
    kinds = ["wiki", "wits"] if args.trace == "both" else [args.trace]
    for kind in kinds:
        run_one(kind, args.duration)


if __name__ == "__main__":
    main()
