#!/usr/bin/env python3
"""Quickstart: run Fifer against the AWS-style baseline in two minutes.

Builds a fluctuating Poisson workload (average 50 req/s, the paper's
prototype load), pre-trains Fifer's LSTM forecaster offline, replays the
trace under both resource managers on an 80-core cluster, and prints the
headline comparison: containers, SLO compliance, cold starts, energy.

Run:  python examples/quickstart.py
"""

from repro import get_mix, run_policy
from repro.prediction import LSTMPredictor, windowed_max_series
from repro.traces import step_poisson_trace


def main() -> None:
    # 1. The workload: the paper's heavy mix (IPA + Detect-Fatigue
    #    chains) under a fluctuating Poisson arrival process.
    mix = get_mix("heavy")
    trace = step_poisson_trace(
        mean_rate_rps=50.0, duration_s=300.0, variation=0.4, seed=3
    )
    print(f"workload: {mix.name} mix "
          f"({', '.join(a.name for a in mix.applications)})")
    print(f"trace:    {len(trace)} requests over "
          f"{trace.duration_ms / 1000:.0f}s (avg {trace.mean_rate_rps:.0f} req/s)")

    # 2. Offline step: pre-train the LSTM on an *independent* trace of
    #    the same distribution (the paper trains on 60% of its trace).
    train = step_poisson_trace(50.0, 1200.0, variation=0.4, seed=99)
    lstm = LSTMPredictor(epochs=30, hidden=32, seed=1)
    lstm.fit(windowed_max_series(train))
    print("predictor: LSTM trained on "
          f"{len(windowed_max_series(train))} windowed-max samples")

    # 3. Run both resource managers on the same trace and cluster.
    print("\nrunning bline (AWS-style spawn-per-request baseline)...")
    bline = run_policy("bline", mix, trace, seed=5, idle_timeout_ms=60_000.0)
    print("running fifer (slack-aware batching + LSTM proactive scaling)...")
    fifer = run_policy(
        "fifer", mix, trace, seed=5, idle_timeout_ms=60_000.0, predictor=lstm
    )

    # 4. The headline comparison.
    print(f"\n{'metric':<28}{'bline':>12}{'fifer':>12}")
    print("-" * 52)
    for label, metric in [
        ("jobs completed", lambda r: f"{r.n_completed}"),
        ("SLO violation rate", lambda r: f"{r.slo_violation_rate:.3%}"),
        ("median latency (ms)", lambda r: f"{r.median_latency_ms:.0f}"),
        ("P99 latency (ms)", lambda r: f"{r.p99_latency_ms:.0f}"),
        ("avg containers", lambda r: f"{r.avg_containers:.1f}"),
        ("cold starts", lambda r: f"{r.cold_starts}"),
        ("energy (kJ)", lambda r: f"{r.energy_joules / 1e3:.0f}"),
    ]:
        print(f"{label:<28}{metric(bline):>12}{metric(fifer):>12}")

    saved = 1.0 - fifer.avg_containers / bline.avg_containers
    energy_saved = 1.0 - fifer.energy_joules / bline.energy_joules
    print(f"\nfifer used {saved:.0%} fewer containers and "
          f"{energy_saved:.0%} less energy at comparable SLO compliance.")


if __name__ == "__main__":
    main()
