#!/usr/bin/env python3
"""Train and compare all eight load forecasters (the paper's Figure 6).

Every model is implemented from scratch on numpy — including the LSTM
with full backpropagation through time — and trained on the first 60%
of a WITS-like windowed-max arrival series, then evaluated walk-forward
on the rest.

Run:  python examples/prediction_playground.py [--trace wits|wiki]
"""

import argparse

import numpy as np

from repro.experiments import format_table
from repro.prediction import (
    default_predictors,
    evaluate_all,
    windowed_max_series,
)
from repro.traces import wiki_trace, wits_trace


def sparkline(values: np.ndarray, width: int = 60) -> str:
    """A terminal sparkline of the series (for eyeballing the shape)."""
    blocks = " .:-=+*#%@"
    if len(values) > width:
        chunks = np.array_split(values, width)
        values = np.array([c.mean() for c in chunks])
    top = values.max() or 1.0
    return "".join(blocks[min(int(v / top * (len(blocks) - 1)), 9)] for v in values)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", choices=["wits", "wiki"], default="wits")
    parser.add_argument("--duration", type=float, default=2400.0)
    args = parser.parse_args()

    if args.trace == "wits":
        trace = wits_trace(avg_rps=300.0, peak_rps=1200.0,
                           duration_s=args.duration, seed=11)
    else:
        trace = wiki_trace(avg_rps=300.0, duration_s=args.duration, seed=11)
    series = windowed_max_series(trace)
    print(f"{args.trace} windowed-max series ({len(series)} intervals of 10s):")
    print(f"  {sparkline(series)}")
    print(f"  mean {series.mean():.0f} req/s, peak {series.max():.0f} req/s, "
          f"peak-to-median {series.max() / np.median(series):.1f}x\n")

    print("training the four ML models (numpy, from scratch)...")
    reports = evaluate_all(default_predictors(seed=11), series)
    rows = [
        (r.name, f"{r.rmse:.1f}", f"{r.mae:.1f}",
         f"{r.mean_latency_ms:.2f}", f"{r.accuracy:.0%}")
        for r in sorted(reports, key=lambda r: r.rmse)
    ]
    print(format_table(
        ["model", "RMSE", "MAE", "latency(ms)", "acc@20%"],
        rows,
        title="Walk-forward one-step forecasts on the held-out 40%:",
    ))
    best = min(reports, key=lambda r: r.rmse)
    print(f"\nlowest RMSE: {best.name} "
          f"(the paper selects the LSTM for Fifer's proactive scaler)")


if __name__ == "__main__":
    main()
