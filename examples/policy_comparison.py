#!/usr/bin/env python3
"""Compare all five resource managers across the three workload mixes.

Reproduces the structure of the paper's prototype evaluation (Figure 8):
Bline, SBatch, RScale, BPred and Fifer on the heavy/medium/light mixes,
reporting SLO violations and containers normalised to the baseline.

Run:  python examples/policy_comparison.py [--duration 300] [--rate 50]
"""

import argparse

from repro.experiments import format_table, normalize, run_prototype
from repro.experiments.prototype import PROTOTYPE_POLICIES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=300.0,
                        help="trace length in seconds (default 300)")
    parser.add_argument("--rate", type=float, default=50.0,
                        help="average arrival rate in req/s (default 50)")
    parser.add_argument("--mixes", nargs="+",
                        default=["heavy", "medium", "light"],
                        help="workload mixes to run")
    args = parser.parse_args()

    for mix in args.mixes:
        print(f"\n=== {mix} mix ===")
        results = run_prototype(
            mix, mean_rate_rps=args.rate, duration_s=args.duration
        )
        containers = normalize(
            {p: r.avg_containers for p, r in results.items()}, "bline"
        )
        energy = normalize(
            {p: r.energy_joules for p, r in results.items()}, "bline"
        )
        rows = []
        for policy in PROTOTYPE_POLICIES:
            r = results[policy]
            rows.append((
                policy,
                f"{r.slo_violation_rate:.3%}",
                f"{r.avg_containers:.1f}",
                f"{containers[policy]:.2f}x",
                r.cold_starts,
                f"{r.median_latency_ms:.0f}",
                f"{r.p99_latency_ms:.0f}",
                f"{energy[policy]:.2f}x",
            ))
        print(format_table(
            ["policy", "SLO viol", "avg containers", "vs bline",
             "cold starts", "median(ms)", "P99(ms)", "energy vs bline"],
            rows,
        ))

    print(
        "\nReading the table: SBatch never scales (fewest containers, most "
        "violations under bursts);\nRScale batches and scales reactively "
        "(few containers, cold-start tail); BPred predicts but\ncannot "
        "batch (Bline-like container counts); Fifer combines batching with "
        "LSTM-driven\nproactive scaling — SBatch-like container counts at "
        "Bline-like SLO compliance."
    )


if __name__ == "__main__":
    main()
