#!/usr/bin/env python3
"""Bring your own function chains: the workload-generation API.

The paper evaluates four fixed ML chains; this example builds *custom*
chains — both from the Djinn&Tonic catalogue and fully synthetic ones —
and runs the Fifer machinery on them unchanged, demonstrating that the
slack/batching/scaling pipeline is workload-agnostic (as long as stage
execution times are predictable, section 8).

Run:  python examples/custom_chains.py
"""

from repro.core.slack import build_stage_plan
from repro.experiments import format_table
from repro.prediction.classical import EWMAPredictor
from repro.runtime.system import run_policy
from repro.traces import step_poisson_trace
from repro.workloads.generator import generate_chain, generate_mix


def main() -> None:
    # 1. A chain drawn from the paper's microservice catalogue.
    catalog_chain = generate_chain("video-pipeline", n_stages=3, seed=42)
    # 2. A fully synthetic chain (random ML-like services).
    synthetic_chain = generate_chain(
        "recsys", n_stages=4, seed=43, synthetic=True
    )

    for app in (catalog_chain, synthetic_chain):
        plan = build_stage_plan(app)
        rows = [
            (svc.name, f"{svc.mean_exec_ms:.1f}",
             f"{plan.stage_slack_ms[i]:.0f}", plan.stage_batch[i])
            for i, svc in enumerate(app.stages)
        ]
        print(format_table(
            ["stage", "exec(ms)", "slack(ms)", "batch"],
            rows,
            title=f"\n{app.name}: SLO {app.slo_ms:.0f} ms, "
                  f"total slack {app.slack_ms:.0f} ms",
        ))

    # 3. A whole generated mix, end to end under two policies.
    mix = generate_mix("custom-tenant", n_applications=2, seed=44)
    trace = step_poisson_trace(30.0, 180.0, variation=0.4, seed=7)
    print(f"\nrunning {len(trace)} requests of the generated mix "
          f"({', '.join(a.name for a in mix.applications)})...")
    results = {
        "bline": run_policy("bline", mix, trace, seed=9,
                            idle_timeout_ms=60_000.0),
        "fifer": run_policy("fifer", mix, trace, seed=9,
                            idle_timeout_ms=60_000.0,
                            predictor=EWMAPredictor()),
    }
    rows = [
        (p, f"{r.slo_violation_rate:.3%}", f"{r.avg_containers:.1f}",
         r.cold_starts, f"{r.median_latency_ms:.0f}")
        for p, r in results.items()
    ]
    print(format_table(
        ["policy", "SLO viol", "avg containers", "cold starts", "median(ms)"],
        rows,
    ))
    saved = 1 - results["fifer"].avg_containers / results["bline"].avg_containers
    print(f"\nfifer consolidated the custom workload into "
          f"{saved:.0%} fewer containers.")


if __name__ == "__main__":
    main()
