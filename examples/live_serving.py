#!/usr/bin/env python3
"""Live serving: the Fifer bricks on a real wall clock.

The simulator answers "what would this policy do?"; the serving runtime
in :mod:`repro.serve` answers it with *actual* concurrency — an asyncio
gateway admitting requests from a trace replayer, worker pools executing
(scaled) work on a thread pool, and the very same reactive/proactive
scalers driven by a periodic control loop instead of simulated events.

This example runs the same policy/trace/seed through both worlds and
prints the reports side by side: the metrics pipeline is shared, so the
rows are directly comparable.  Time is compressed 20x (time_scale=0.05)
so the 60 s workload takes ~3 s of wall time per run.

Run:  python examples/live_serving.py
"""

import time

from repro.experiments import format_table
from repro.runtime.system import ClusterSpec, run_policy
from repro.serve import ServeOptions, ServingRuntime
from repro.core.policies import make_policy_config
from repro.traces import poisson_trace
from repro.workloads import get_mix

POLICY = "rscale"
MIX = "medium"
SEED = 7
RATE_RPS = 15.0
DURATION_S = 60.0
TIME_SCALE = 0.05  # 20x compression: 60 model seconds in 3 wall seconds


def row(label, result):
    return (
        label,
        result.n_jobs,
        f"{result.slo_violation_rate:.2%}",
        f"{result.median_latency_ms:.0f}",
        f"{result.p99_latency_ms:.0f}",
        result.peak_containers,
        result.cold_starts,
    )


def main() -> None:
    mix = get_mix(MIX)
    spec = ClusterSpec(n_nodes=5)
    trace = poisson_trace(RATE_RPS, DURATION_S, seed=SEED)

    # World 1: the discrete-event simulator (virtual clock, instant).
    sim_result = run_policy(
        POLICY, mix, trace, cluster_spec=spec, seed=SEED,
        idle_timeout_ms=60_000.0,
    )

    # World 2: the live runtime (wall clock, scaled 20x).
    runtime = ServingRuntime(
        config=make_policy_config(POLICY, idle_timeout_ms=60_000.0),
        mix=mix,
        cluster_spec=spec,
        seed=SEED,
        options=ServeOptions(time_scale=TIME_SCALE),
    )
    t0 = time.monotonic()
    live_result = runtime.run(trace)
    wall = time.monotonic() - t0

    print(format_table(
        ["world", "jobs", "SLO viol", "median(ms)", "P99(ms)",
         "peak containers", "cold starts"],
        [row("sim", sim_result), row("live", live_result)],
        title=f"{POLICY} on {MIX} mix, {trace.name}, seed {SEED}",
    ))
    print(f"\nlive run: {wall:.1f} wall seconds for {DURATION_S:.0f} model "
          f"seconds (scale {TIME_SCALE}), drained="
          f"{'yes' if runtime.drain_completed else 'timed out'}, "
          f"shed={runtime.shed_jobs}")
    print("Same policy code, same metrics pipeline — only the clock "
          "differs; small gaps come from wall-clock jitter.")


if __name__ == "__main__":
    main()
