#!/usr/bin/env python3
"""Explore slack distribution, batch sizing and SLO sensitivity.

Shows the offline planning step of Fifer for each microservice chain:
how the end-to-end slack splits across stages under proportional vs
equal division, the resulting per-stage batch sizes, and how batching
opportunity collapses as the SLO tightens (the paper's section 8
observation that chains whose execution exceeds ~50% of the SLO gain
little from batching).

Run:  python examples/slack_explorer.py
"""

from repro.core.slack import SlackDivision, build_stage_plan
from repro.experiments import format_table
from repro.workloads import APPLICATIONS


def show_plans() -> None:
    for app in APPLICATIONS.values():
        print(f"\n=== {app.name} (SLO {app.slo_ms:.0f} ms, "
              f"exec {app.total_exec_ms:.1f} ms, slack {app.slack_ms:.0f} ms) ===")
        prop = build_stage_plan(app, division=SlackDivision.PROPORTIONAL)
        equal = build_stage_plan(app, division=SlackDivision.EQUAL)
        rows = []
        for i, svc in enumerate(app.stages):
            rows.append((
                svc.name,
                f"{svc.mean_exec_ms:.1f}",
                f"{prop.stage_slack_ms[i]:.0f}",
                prop.stage_batch[i],
                f"{equal.stage_slack_ms[i]:.0f}",
                equal.stage_batch[i],
            ))
        print(format_table(
            ["stage", "exec(ms)", "prop slack(ms)", "prop B",
             "equal slack(ms)", "equal B"],
            rows,
        ))


def slo_sensitivity() -> None:
    print("\n=== SLO sensitivity: total batch capacity per chain ===")
    slos = [400.0, 600.0, 800.0, 1000.0, 1500.0, 2000.0]
    rows = []
    for app in APPLICATIONS.values():
        capacities = []
        for slo in slos:
            floor = app.total_exec_ms + app.total_overhead_ms
            if slo <= floor:
                capacities.append("-")  # no slack at this SLO
                continue
            plan = build_stage_plan(app.with_slo(slo))
            capacities.append(str(sum(plan.stage_batch)))
        rows.append((app.name, *capacities))
    print(format_table(
        ["application", *(f"SLO {s:.0f}" for s in slos)],
        rows,
        title="sum of per-stage batch sizes ( '-' = execution exceeds SLO):",
    ))
    print(
        "\nTighter SLOs collapse batch sizes toward 1 (no batching benefit); "
        "looser SLOs\ngrow the consolidation opportunity linearly — the "
        "paper's section 8 trade-off."
    )


if __name__ == "__main__":
    show_plans()
    slo_sensitivity()
