#!/usr/bin/env python3
"""Multi-tenant serverless cluster: per-tenant policies, shared iron.

Section 2.1 of the paper: "In the case of multi-tenancy, our proposed
ideas can be individually applied to each tenant" — pools stay isolated
(footnote 4) while the physical cluster is shared. This example runs
three tenants with different resource managers side by side and shows
the shared-cluster accounting.

Run:  python examples/multi_tenant.py
"""

from repro.core.policies import make_policy_config
from repro.experiments import format_table
from repro.prediction.classical import EWMAPredictor
from repro.runtime import ClusterSpec, MultiTenantSystem, TenantSpec
from repro.traces import poisson_trace, step_poisson_trace
from repro.workloads import get_mix


def main() -> None:
    tenants = [
        TenantSpec(
            name="vision-team",
            config=make_policy_config("fifer", idle_timeout_ms=60_000.0),
            mix=get_mix("light"),
            trace=step_poisson_trace(20.0, 180.0, variation=0.4, seed=1),
            predictor=EWMAPredictor(),  # Fifer with a cheap forecaster
            seed=1,
        ),
        TenantSpec(
            name="assistant-team",
            config=make_policy_config("rscale", idle_timeout_ms=60_000.0),
            mix=get_mix("medium"),
            trace=poisson_trace(15.0, 180.0, seed=2),
            seed=2,
        ),
        TenantSpec(
            name="legacy-team",
            config=make_policy_config("bline", idle_timeout_ms=60_000.0),
            mix=get_mix("heavy"),
            trace=poisson_trace(10.0, 180.0, seed=3),
            seed=3,
        ),
    ]
    system = MultiTenantSystem(tenants, cluster_spec=ClusterSpec(n_nodes=5))
    print("running 3 tenants on a shared 80-core cluster...")
    result = system.run()

    rows = []
    for name, r in result.tenants.items():
        rows.append((
            name, r.policy, r.mix, r.n_jobs,
            f"{r.slo_violation_rate:.3%}", f"{r.avg_containers:.1f}",
            r.cold_starts,
        ))
    print(format_table(
        ["tenant", "policy", "mix", "jobs", "SLO viol",
         "avg containers", "cold starts"],
        rows,
    ))
    print(f"\nshared cluster: peak {result.peak_total_containers} containers, "
          f"mean power {result.cluster_mean_power_w:.0f} W, "
          f"energy {result.cluster_energy_joules / 1e3:.0f} kJ")
    print(f"aggregate SLO violation rate: {result.total_violation_rate():.3%}")
    print(
        "\nEach tenant keeps its own pools (no cross-tenant container "
        "sharing); the frugal\ntenants' consolidation leaves headroom the "
        "bline tenant's over-provisioning eats."
    )


if __name__ == "__main__":
    main()
