"""Setup shim for environments without the `wheel` package.

`pip install -e .` requires building a wheel; on offline boxes lacking
the wheel module, `python setup.py develop` installs the same editable
package using setuptools alone.
"""
from setuptools import setup

setup()
